//! eCAN: CAN augmented with "expressway" routing tables of larger span.
//!
//! From the paper (§3.2): every `2^d` CAN zones form an order-2 zone and
//! every `2^d` order-`i` zones form an order-`(i+1)` zone. A node, besides
//! its default CAN neighbors, keeps one *representative* node in each
//! neighboring high-order zone at every order. Which member becomes the
//! representative is the *flexibility* the paper exploits: the
//! [`NeighborSelector`] hook is exactly where proximity-neighbor selection
//! (random baseline, global-soft-state lookup, or the ground-truth optimum)
//! plugs in.
//!
//! # Table storage
//!
//! An expressway entry is fully determined by the owner's zone plus three
//! small numbers — the order, the shift axis, and the shift direction — so
//! tables store exactly that as 8-byte [`CompactEntry`]s in a dense
//! per-node arena, and [`EcanOverlay::high_order_entries`] materializes the
//! [`HighOrderEntry`] view (with its `target_box`) on demand. Entries are
//! materialized against the aligned level recorded when the table was
//! built, so the boxes they advertise stay stable even if the owner's zone
//! is later split thinner. A reverse index (who references me as a
//! representative?) makes [`EcanOverlay::dependents_of`] O(dependents)
//! instead of a scan over every table, which in turn makes join and
//! departure maintenance incremental: only the newcomer, the split owner,
//! and the actual dependents are touched — never the full table set.
//!
//! # Example
//!
//! ```
//! use tao_overlay::ecan::{EcanOverlay, RandomSelector};
//! use tao_overlay::{CanOverlay, Point};
//! use tao_topology::NodeIdx;
//! use tao_util::rand::SeedableRng;
//!
//! let mut rng = tao_util::rand::rngs::StdRng::seed_from_u64(7);
//! let mut can = CanOverlay::new(2).unwrap();
//! for i in 0..64 {
//!     can.join(NodeIdx(i), Point::random(2, &mut rng));
//! }
//! let ecan = EcanOverlay::build(can, &mut RandomSelector::new(1));
//! let live: Vec<_> = ecan.can().live_nodes().collect();
//! let route = ecan.route_express(live[0], &Point::random(2, &mut rng)).unwrap();
//! // Expressways shorten routes versus plain greedy CAN on average.
//! assert!(route.hop_count() <= 64);
//! ```

use tao_util::footprint::Footprint;
use tao_util::rand::rngs::StdRng;
use tao_util::rand::{Rng, SeedableRng};
use tao_topology::RttOracle;

use crate::can::{CanOverlay, OverlayError, OverlayNodeId, Route};
use crate::point::Point;
use crate::zone::Zone;

/// One expressway routing-table entry, materialized.
#[derive(Debug, Clone, PartialEq)]
pub struct HighOrderEntry {
    /// The order of the zone this entry spans (2 = smallest high-order).
    pub order: u32,
    /// The neighboring high-order zone the entry points into.
    pub target_box: Zone,
    /// The member of `target_box` chosen as representative.
    pub representative: OverlayNodeId,
}

/// The stored form of an expressway entry: the target box is recomputed
/// from `(order, axis, dir)` and the owner's zone, so only 8 bytes per
/// entry live in the table arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CompactEntry {
    /// Order of the spanned zone (2 = smallest high-order).
    order: u8,
    /// Axis the target box is shifted along.
    axis: u8,
    /// Shift direction: -1 or +1.
    dir: i8,
    /// The representative's node id.
    rep: u32,
}

/// A node's expressway table: compact entries plus the aligned level of
/// the node's zone at build time (materialization anchors to this level,
/// which stays valid because zones only ever shrink in place).
#[derive(Debug, Clone, Default)]
struct NodeTable {
    built_level: u32,
    entries: Vec<CompactEntry>,
}

/// How a selector answers a whole-box representative query — the fast
/// path that avoids enumerating every member of a huge high-order zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoxSelection {
    /// Enumerate the box's members and call [`NeighborSelector::select`]
    /// (the default, and the only option for selectors that must compare
    /// candidates).
    Enumerate,
    /// Use this node, which the selector asserts is a live member of the
    /// target box other than the querying node.
    Chosen(OverlayNodeId),
    /// Leave no entry for this box.
    Skip,
}

/// Chooses the representative member of a neighboring high-order zone.
///
/// The paper's three regimes map to three implementations:
/// [`RandomSelector`] (baseline), the global-soft-state selector built in
/// `tao-core` (the contribution), and [`ClosestSelector`] (the unattainable
/// optimum, via free ground-truth distances).
pub trait NeighborSelector {
    /// Picks one of `candidates` (non-empty, all live members of
    /// `target_box`) as the representative for `for_node`.
    fn select(
        &mut self,
        for_node: OverlayNodeId,
        target_box: &Zone,
        candidates: &[OverlayNodeId],
        can: &CanOverlay,
    ) -> OverlayNodeId;

    /// Picks a representative for `target_box` without a pre-enumerated
    /// candidate list. The default answers [`BoxSelection::Enumerate`],
    /// which falls back to [`NeighborSelector::select`]; selectors that
    /// can choose in O(depth) — e.g. by sampling the box — override this
    /// so million-node table builds never enumerate half the overlay.
    // tao-lint: hot
    fn select_in_box(
        &mut self,
        _for_node: OverlayNodeId,
        _target_box: &Zone,
        _can: &CanOverlay,
    ) -> BoxSelection {
        BoxSelection::Enumerate
    }
}

/// Picks a uniformly random candidate — the paper's "random neighbor
/// selection" baseline (no topology awareness).
#[derive(Debug, Clone)]
pub struct RandomSelector {
    rng: StdRng,
}

impl RandomSelector {
    /// Creates a selector with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomSelector {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl NeighborSelector for RandomSelector {
    fn select(
        &mut self,
        _for_node: OverlayNodeId,
        _target_box: &Zone,
        candidates: &[OverlayNodeId],
        _can: &CanOverlay,
    ) -> OverlayNodeId {
        candidates[self.rng.gen_range(0..candidates.len())]
    }
}

/// The random baseline for overlays too large to enumerate: instead of
/// listing a box's members and indexing one, it samples the zone tree
/// directly (O(depth) per pick, zone-count weighted like
/// [`CanOverlay::sample_in`]). Statistically interchangeable with
/// [`RandomSelector`] but not stream-identical, so the small-scale paper
/// figures keep using `RandomSelector`.
#[derive(Debug, Clone)]
pub struct SampledRandomSelector {
    rng: StdRng,
}

impl SampledRandomSelector {
    /// Creates a selector with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        SampledRandomSelector {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl NeighborSelector for SampledRandomSelector {
    fn select(
        &mut self,
        _for_node: OverlayNodeId,
        _target_box: &Zone,
        candidates: &[OverlayNodeId],
        _can: &CanOverlay,
    ) -> OverlayNodeId {
        candidates[self.rng.gen_range(0..candidates.len())]
    }

    // tao-lint: hot
    fn select_in_box(
        &mut self,
        for_node: OverlayNodeId,
        target_box: &Zone,
        can: &CanOverlay,
    ) -> BoxSelection {
        // A handful of rejection rounds: the only way every draw is
        // `for_node` itself is a box dominated by its own zones, in which
        // case skipping matches what candidate enumeration would do.
        for _ in 0..16 {
            match can.sample_in(target_box, &mut self.rng) {
                Some(s) if s != for_node => return BoxSelection::Chosen(s),
                Some(_) => continue,
                None => return BoxSelection::Skip,
            }
        }
        BoxSelection::Skip
    }
}

/// Picks the physically closest candidate using *free* ground-truth
/// distances — the paper's "optimal" curve (infinite RTT measurements).
#[derive(Debug, Clone)]
pub struct ClosestSelector {
    oracle: RttOracle,
}

impl ClosestSelector {
    /// Creates the optimal selector over `oracle`'s topology.
    pub fn new(oracle: RttOracle) -> Self {
        ClosestSelector { oracle }
    }
}

impl NeighborSelector for ClosestSelector {
    fn select(
        &mut self,
        for_node: OverlayNodeId,
        _target_box: &Zone,
        candidates: &[OverlayNodeId],
        can: &CanOverlay,
    ) -> OverlayNodeId {
        let me = can.underlay(for_node);
        *candidates
            .iter()
            .min_by(|&&a, &&b| {
                let da = self.oracle.ground_truth(me, can.underlay(a));
                let db = self.oracle.ground_truth(me, can.underlay(b));
                da.cmp(&db).then(a.cmp(&b))
            })
            .expect("candidates are non-empty") // tao-lint: allow(no-unwrap-in-lib, reason = "candidates are non-empty")
    }
}

/// A CAN overlay plus per-node expressway routing tables.
///
/// See the [module documentation](self) for the compact table layout and
/// the incremental-maintenance contract.
#[derive(Debug, Clone)]
pub struct EcanOverlay {
    can: CanOverlay,
    /// Expressway tables, dense by node id (empty for departed nodes and
    /// nodes joined via [`EcanOverlay::join_unselected`]).
    tables: Vec<NodeTable>,
    /// Reverse index: `dependents[r]` lists the owners whose tables name
    /// `r` as a representative, one push per referencing entry.
    dependents: Vec<Vec<u32>>,
}

impl EcanOverlay {
    /// Builds expressway tables for every live node of `can`, choosing
    /// representatives through `selector`.
    pub fn build(can: CanOverlay, selector: &mut dyn NeighborSelector) -> Self {
        let mut ecan = EcanOverlay {
            can,
            tables: Vec::new(),
            dependents: Vec::new(),
        };
        ecan.reselect(selector);
        ecan
    }

    /// The underlying CAN.
    pub fn can(&self) -> &CanOverlay {
        &self.can
    }

    /// Consumes the eCAN, returning the underlying CAN.
    pub fn into_can(self) -> CanOverlay {
        self.can
    }

    /// Grows the dense per-id arrays to cover every assigned id.
    fn grow_arrays(&mut self) {
        let n = self.can.id_bound();
        if self.tables.len() < n {
            self.tables.resize_with(n, NodeTable::default);
            self.dependents.resize_with(n, Vec::new);
        }
    }

    /// Replaces `id`'s table, keeping the reverse index in sync.
    fn set_table(&mut self, id: OverlayNodeId, table: NodeTable) {
        self.grow_arrays();
        let old = std::mem::replace(&mut self.tables[id.index()], table);
        for e in &old.entries {
            let deps = &mut self.dependents[e.rep as usize];
            if let Some(pos) = deps.iter().position(|&d| d == id.0) {
                deps.swap_remove(pos);
            }
        }
        let reps: Vec<u32> = self.tables[id.index()].entries.iter().map(|e| e.rep).collect();
        for r in reps {
            self.dependents[r as usize].push(id.0);
        }
    }

    /// Materializes the target box of a stored entry against the level the
    /// owner's table was built at. The owner's zone may have been split
    /// thinner since, but it can only have shrunk *in place*, so its centre
    /// still falls in the same aligned cell and the box is unchanged.
    fn entry_box(zone: &Zone, built_level: u32, e: &CompactEntry) -> Zone {
        let level = built_level + 1 - e.order as u32;
        let side = 0.5f64.powi(level as i32);
        let my_box = zone.enclosing_aligned_box(level);
        shifted_box(&my_box, e.axis as usize, e.dir as f64 * side)
    }

    /// The expressway entries of `id` (empty for shallow zones and
    /// departed nodes), materialized from the compact table.
    // tao-lint: allow(panic-reachability, reason = "materialization arithmetic is bounded by built_level anchoring; a level underflow is a table-construction bug the invariant tests pin down")
    pub fn high_order_entries(&self, id: OverlayNodeId) -> Vec<HighOrderEntry> {
        let Some(table) = self.tables.get(id.index()) else {
            return Vec::new();
        };
        if table.entries.is_empty() {
            return Vec::new();
        }
        let Ok(zone) = self.can.zone(id) else {
            return Vec::new();
        };
        table
            .entries
            .iter()
            .map(|e| HighOrderEntry {
                order: e.order as u32,
                target_box: Self::entry_box(&zone, table.built_level, e),
                representative: OverlayNodeId(e.rep),
            })
            .collect()
    }

    /// Recomputes every node's expressway table with a (possibly different)
    /// selector — e.g. after pub/sub notifications triggered re-selection.
    /// This is the explicit global repair hook; membership changes never
    /// trigger it (see [`EcanOverlay::join_and_select`] and
    /// [`EcanOverlay::depart_and_repair`] for the incremental paths).
    pub fn reselect(&mut self, selector: &mut dyn NeighborSelector) {
        let live: Vec<OverlayNodeId> = self.can.live_nodes().collect();
        for t in &mut self.tables {
            *t = NodeTable::default();
        }
        for d in &mut self.dependents {
            d.clear();
        }
        for id in live {
            let table = self.build_table(id, selector);
            self.set_table(id, table);
        }
    }

    /// Recomputes the expressway table of a single node.
    pub fn reselect_node(&mut self, id: OverlayNodeId, selector: &mut dyn NeighborSelector) {
        let table = self.build_table(id, selector);
        self.set_table(id, table);
    }

    /// Joins a new node at `point`, splitting the owner's zone, *without*
    /// building its expressway table (the paper's modified join procedure
    /// first publishes the newcomer's soft-state, then selects neighbors —
    /// call [`EcanOverlay::reselect_node`] afterwards).
    ///
    /// The split also invalidates the former owner's table, which is
    /// rebuilt lazily on its next re-selection; routing stays correct in
    /// the interim because tables only ever *shorten* routes.
    ///
    /// # Panics
    ///
    /// Panics if the point has the wrong dimensionality.
    pub fn join_unselected(
        &mut self,
        underlay: tao_topology::NodeIdx,
        point: Point,
    ) -> OverlayNodeId {
        let id = self.can.join(underlay, point);
        // Drop tables whose entries might now point at a stale zone view:
        // only the former owner's zone changed shape, and representatives
        // remain live members, so existing tables stay usable as-is.
        self.set_table(id, NodeTable::default());
        id
    }

    /// Joins a new node and maintains every affected table incrementally:
    /// the newcomer's table is built, the split owner's table is rebuilt
    /// (its zone halved), and owners whose entries named the split owner
    /// inside a box it vacated are repaired entry-by-entry. No other
    /// table is touched — this is the membership path for populations
    /// where a full [`EcanOverlay::reselect`] is unaffordable.
    ///
    /// # Panics
    ///
    /// Panics if the point has the wrong dimensionality.
    // tao-lint: allow(panic-reachability, reason = "documented panic on dimensionality mismatch; table build panics only on corrupted zone bookkeeping the churn invariant tests pin down")
    pub fn join_and_select(
        &mut self,
        underlay: tao_topology::NodeIdx,
        point: Point,
        selector: &mut dyn NeighborSelector,
    ) -> OverlayNodeId {
        let prev_owner = if self.can.is_empty() {
            None
        } else {
            Some(self.can.owner(&point))
        };
        let id = self.can.join(underlay, point);
        let table = self.build_table(id, selector);
        self.set_table(id, table);
        if let Some(owner) = prev_owner {
            let table = self.build_table(owner, selector);
            self.set_table(owner, table);
            // The owner kept only half its zone; entries elsewhere that
            // advertised it inside the vacated half must be re-pointed.
            let deps = self.dependents_of(owner);
            for d in deps {
                self.repair_entries(d, selector);
            }
        }
        id
    }

    /// Departs a node from the underlying CAN, dropping its table. Other
    /// nodes' tables may still name the departed node; re-select them (the
    /// maintenance machinery's job) or rely on routing's liveness filter.
    ///
    /// # Errors
    ///
    /// Propagates [`OverlayError`] from [`CanOverlay::leave`].
    pub fn depart(&mut self, id: OverlayNodeId) -> Result<(), OverlayError> {
        self.can.leave(id)?;
        self.set_table(id, NodeTable::default());
        Ok(())
    }

    /// Departs a node and repairs every table that referenced it, entry by
    /// entry: each dangling entry gets a fresh representative from its
    /// target box (or is dropped if the box holds no other member). Only
    /// the actual dependents are touched — no full rebuild.
    ///
    /// # Errors
    ///
    /// Propagates [`OverlayError`] from [`CanOverlay::leave`].
    // tao-lint: allow(panic-reachability, reason = "repair panics only on corrupted tables; the incremental-churn property test drives every recoverable path")
    pub fn depart_and_repair(
        &mut self,
        id: OverlayNodeId,
        selector: &mut dyn NeighborSelector,
    ) -> Result<(), OverlayError> {
        let deps = self.dependents_of(id);
        self.depart(id)?;
        for d in deps {
            self.repair_entries(d, selector);
        }
        Ok(())
    }

    /// Re-points or drops the entries of `d` whose representative is dead
    /// or no longer owns space inside the advertised box; sound entries
    /// are left untouched (and their selector state unconsumed).
    fn repair_entries(&mut self, d: OverlayNodeId, selector: &mut dyn NeighborSelector) {
        if !self.can.is_live(d) {
            return;
        }
        let Ok(zone) = self.can.zone(d) else {
            return;
        };
        let (built_level, entries) = {
            let t = &self.tables[d.index()];
            (t.built_level, t.entries.clone())
        };
        let mut repaired = Vec::with_capacity(entries.len());
        let mut changed = false;
        for e in entries {
            let rep = OverlayNodeId(e.rep);
            let target_box = Self::entry_box(&zone, built_level, &e);
            let sound = self.can.is_live(rep)
                && self
                    .can
                    .zone_intersects(rep, &target_box)
                    .unwrap_or(false);
            if sound {
                repaired.push(e);
                continue;
            }
            changed = true;
            let new_rep = match selector.select_in_box(d, &target_box, &self.can) {
                BoxSelection::Chosen(r) if r != d && self.can.is_live(r) => Some(r),
                BoxSelection::Skip => None,
                _ => {
                    let mut candidates = self.can.nodes_in(&target_box);
                    candidates.retain(|&c| c != d);
                    if candidates.is_empty() {
                        None
                    } else {
                        Some(selector.select(d, &target_box, &candidates, &self.can))
                    }
                }
            };
            if let Some(r) = new_rep {
                repaired.push(CompactEntry { rep: r.0, ..e });
            }
        }
        if changed {
            self.set_table(
                d,
                NodeTable {
                    built_level,
                    entries: repaired,
                },
            );
        }
    }

    /// Ids of live nodes whose expressway tables reference `id` — the
    /// subscribers that need re-selection when `id` departs. Served from
    /// the reverse index in O(dependents), not by scanning every table.
    // tao-lint: allow(panic-reachability, reason = "bounds-checked get with an empty-Vec fallback; the panic edge is the approximate name-match on index()")
    pub fn dependents_of(&self, id: OverlayNodeId) -> Vec<OverlayNodeId> {
        let Some(deps) = self.dependents.get(id.index()) else {
            return Vec::new();
        };
        let mut out: Vec<OverlayNodeId> = deps
            .iter()
            .filter(|&&d| d != id.0)
            .map(|&d| OverlayNodeId(d))
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Conservative churn footprint of a join landing on `point` —
    /// the underlying CAN footprint ([`CanOverlay::join_footprint`]).
    /// A join only splits a zone and rewrites CAN adjacency; expressway
    /// tables are built for the new node afterwards without mutating
    /// anyone else's table, so no extra ids are needed.
    // tao-lint: allow(panic-reachability, reason = "delegates to the CAN footprint query, whose panics are guarded by its own preconditions")
    pub fn join_footprint(&self, point: &Point) -> Footprint {
        self.can.join_footprint(point)
    }

    /// Conservative churn footprint of a departure of `id`: the CAN
    /// footprint ([`CanOverlay::depart_footprint`]) plus the ids of
    /// every dependent whose expressway table references `id` — the
    /// repair pass of [`EcanOverlay::depart_and_repair`] rewrites
    /// exactly those tables.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] if `id` is unknown or departed.
    // tao-lint: allow(panic-reachability, reason = "CAN footprint panics are guarded by ensure_live; dependents_of degrades to an empty list")
    pub fn depart_footprint(&self, id: OverlayNodeId) -> Result<Footprint, OverlayError> {
        let mut fp = self.can.depart_footprint(id)?;
        for d in self.dependents_of(id) {
            fp.add_id(d.index() as u64);
        }
        Ok(fp)
    }

    /// The high-order zones enclosing `id`'s CAN zone, order 2 upward
    /// (largest order last, just below the whole space).
    pub fn enclosing_high_order_zones(&self, id: OverlayNodeId) -> Vec<Zone> {
        let Ok(zone) = self.can.zone(id) else {
            return Vec::new();
        };
        let base_level = aligned_level(&zone);
        // Order-2 zone first (level base_level - 1), whole space excluded.
        (1..base_level)
            .rev()
            .map(|level| zone.enclosing_aligned_box(level))
            .collect()
    }

    fn build_table(
        &self,
        id: OverlayNodeId,
        selector: &mut dyn NeighborSelector,
    ) -> NodeTable {
        let mut table = NodeTable::default();
        let Ok(zone) = self.can.zone(id) else {
            return table;
        };
        let dims = self.can.dims();
        let base_level = aligned_level(&zone);
        table.built_level = base_level;
        // Order-1 is the node's aligned box at base_level; order-i is the
        // aligned box at base_level - (i - 1). Entries exist for orders 2..;
        // the box at level 0 is the whole space and has no neighbors.
        let mut order = 2u32;
        let mut level = base_level.saturating_sub(1);
        let mut seen_boxes: Vec<Zone> = Vec::new();
        while level >= 1 {
            let my_box = zone.enclosing_aligned_box(level);
            let side = 0.5f64.powi(level as i32);
            seen_boxes.clear();
            for axis in 0..dims {
                for dir in [-1.0f64, 1.0] {
                    let target_box = shifted_box(&my_box, axis, dir * side);
                    if target_box == my_box {
                        continue; // wrapped onto itself (level-1 axis)
                    }
                    // Skip duplicates (± directions can wrap to the same box).
                    if seen_boxes.iter().any(|b| *b == target_box) {
                        continue;
                    }
                    let representative = match selector.select_in_box(id, &target_box, &self.can)
                    {
                        BoxSelection::Chosen(r) if r != id && self.can.is_live(r) => r,
                        BoxSelection::Skip => continue,
                        _ => {
                            let mut candidates = self.can.nodes_in(&target_box);
                            candidates.retain(|&c| c != id);
                            if candidates.is_empty() {
                                continue;
                            }
                            selector.select(id, &target_box, &candidates, &self.can)
                        }
                    };
                    debug_assert!(order <= u8::MAX as u32, "order overflows compact entry");
                    seen_boxes.push(target_box);
                    table.entries.push(CompactEntry {
                        order: order as u8,
                        axis: axis as u8,
                        dir: if dir < 0.0 { -1 } else { 1 },
                        rep: representative.0,
                    });
                }
            }
            if level == 1 {
                break;
            }
            level -= 1;
            order += 1;
        }
        table
    }

    /// Routes from `source` to the owner of `target` using both default CAN
    /// neighbors and expressway entries, greedily minimising the distance
    /// from the next hop's zone to the target.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CanOverlay::route`].
    pub fn route_express(
        &self,
        source: OverlayNodeId,
        target: &Point,
    ) -> Result<Route, OverlayError> {
        if target.dims() != self.can.dims() {
            return Err(OverlayError::DimensionMismatch {
                expected: self.can.dims(),
                got: target.dims(),
            });
        }
        if !self.can.is_live(source) {
            return Err(OverlayError::UnknownNode(source));
        }
        let mut hops = vec![source];
        let mut current = source;
        let mut visited = tao_util::det::DetSet::new();
        visited.insert(source);
        let limit = 4 * self.can.len() + 16;
        while !self.can.owns_point(current, target)? {
            if hops.len() > limit {
                return Err(OverlayError::RoutingStuck { at: current });
            }
            let defaults = self.can.neighbors(current)?;
            let express = self
                .tables
                .get(current.index())
                .map(|t| t.entries.as_slice())
                .unwrap_or(&[])
                .iter()
                .map(|e| OverlayNodeId(e.rep));
            let next = defaults
                .into_iter()
                .chain(express)
                .filter(|n| !visited.contains(n) && self.can.is_live(*n))
                .min_by(|a, b| {
                    let da = self
                        .can
                        .distance_to_point(*a, target)
                        .expect("filtered to live nodes"); // tao-lint: allow(no-unwrap-in-lib, reason = "filtered to live nodes")
                    let db = self
                        .can
                        .distance_to_point(*b, target)
                        .expect("filtered to live nodes"); // tao-lint: allow(no-unwrap-in-lib, reason = "filtered to live nodes")
                    da.total_cmp(&db).then(a.cmp(b))
                });
            let Some(next) = next else {
                // Expressway jumps can strand greedy in a pocket where every
                // neighbor was already tried. Default CAN routing from here
                // is loop-free on its own visited set; splice it in.
                let tail = self.can.route(current, target)?;
                hops.extend(tail.hops.into_iter().skip(1));
                return Ok(Route { hops });
            };
            visited.insert(next);
            hops.push(next);
            current = next;
        }
        Ok(Route { hops })
    }

    /// Allocation-free variant of [`EcanOverlay::route_express`]: same
    /// checks, same hop sequence, same errors, with the visited set and hop
    /// buffer reused from `scratch` and candidate distances computed once
    /// per hop in a single pass over the SoA bounds (the allocating path
    /// also clones the default-neighbor list every hop). On success the hop
    /// sequence (source first) is in
    /// [`RouteScratch::hops`](crate::RouteScratch::hops); on error the
    /// scratch is still reusable.
    // tao-lint: hot
    // tao-lint: allow(panic-reachability, reason = "scratch stamps are sized by begin_can(id_bound()) before any mark; distances index bounds by live ids and the stuck-fallback delegates to route_append's guarded edges")
    pub fn route_express_into(
        &self,
        scratch: &mut crate::RouteScratch,
        source: OverlayNodeId,
        target: &Point,
    ) -> Result<(), OverlayError> {
        if target.dims() != self.can.dims() {
            return Err(OverlayError::DimensionMismatch {
                expected: self.can.dims(),
                got: target.dims(),
            });
        }
        if !self.can.is_live(source) {
            return Err(OverlayError::UnknownNode(source));
        }
        scratch.begin_can(self.can.id_bound());
        scratch.push_hop(source);
        scratch.mark(source.index());
        let mut current = source;
        let limit = 4 * self.can.len() + 16;
        // See `CanOverlay::is_pristine`: join-only overlays have no extra
        // zones, so the primary-only kernels are exact and skip a random
        // memory touch per candidate.
        let pristine = self.can.is_pristine();
        while !(if pristine {
            self.can.primary_owns_point(current.index(), target)
        } else {
            self.can.node_owns_point(current.index(), target)
        }) {
            if scratch.hops_len() > limit {
                return Err(OverlayError::RoutingStuck { at: current });
            }
            // The candidate chain (default neighbors, then express reps) is
            // not id-sorted, so the incumbent is displaced on a strictly
            // smaller (distance, id) pair — the total_cmp-then-id order the
            // allocating path's `min_by` uses. Duplicate ids across the two
            // segments compare Equal and keep the first, which is the same
            // node either way.
            let mut best: Option<(f64, OverlayNodeId)> = None;
            let defaults = self.can.neighbor_slice(current.index()).iter().copied();
            let express = self
                .tables
                .get(current.index())
                .map(|t| t.entries.as_slice())
                .unwrap_or(&[])
                .iter()
                .map(|e| OverlayNodeId(e.rep));
            for n in defaults.chain(express) {
                if scratch.is_marked(n.index()) || !self.can.is_live(n) {
                    continue;
                }
                let d = if pristine {
                    self.can.primary_distance(n.index(), target)
                } else {
                    self.can.node_distance(n.index(), target)
                };
                let better = match &best {
                    Some((bd, bn)) => d.total_cmp(bd).then(n.cmp(bn)).is_lt(),
                    None => true,
                };
                if better {
                    best = Some((d, n));
                }
            }
            let Some((_, next)) = best else {
                // Same stuck-fallback as the allocating path: default CAN
                // routing from here on a fresh visited generation, tail
                // spliced after the express prefix.
                return self.can.route_append(scratch, current, target);
            };
            scratch.mark(next.index());
            scratch.push_hop(next);
            current = next;
        }
        Ok(())
    }

    /// Asserts the eCAN's structural invariants, panicking with a
    /// description on the first violation:
    ///
    /// * the underlying CAN's invariants (zone tiling, neighbor symmetry);
    /// * every non-empty expressway table belongs to a live node;
    /// * every entry has order ≥ 2, a representative that is live, is not
    ///   the owner, and still owns space inside the entry's target box.
    ///
    /// Intended for churn tests, called after re-selection has repaired
    /// tables (entries go stale by design between a departure/split and the
    /// next [`EcanOverlay::reselect`]).
    pub fn check_invariants(&self) {
        self.can.check_invariants();
        for i in 0..self.tables.len() {
            if self.tables[i].entries.is_empty() {
                continue;
            }
            let owner = OverlayNodeId(i as u32);
            assert!(
                self.can.is_live(owner),
                "expressway table belongs to departed node {owner}"
            );
            for e in self.high_order_entries(owner) {
                assert!(e.order >= 2, "{owner} has an order-{} entry", e.order);
                assert_ne!(
                    e.representative, owner,
                    "{owner} chose itself as a representative"
                );
                let zones = self
                    .can
                    .zones(e.representative)
                    .unwrap_or_else(|_| {
                        panic!(
                            "{owner}'s order-{} entry names departed {}",
                            e.order, e.representative
                        )
                    });
                assert!(
                    zones.iter().any(|z| z.intersects(&e.target_box)),
                    "{owner}'s order-{} representative {} left the target box",
                    e.order,
                    e.representative
                );
            }
        }
    }
}

/// The finest aligned-grid level that still contains `zone`: the number of
/// complete halving rounds across all axes, i.e. `min_axis log2(1/extent)`.
fn aligned_level(zone: &Zone) -> u32 {
    (0..zone.dims())
        .map(|a| (-zone.extent(a).log2()).floor() as u32)
        .min()
        .expect("zones have at least one axis") // tao-lint: allow(no-unwrap-in-lib, reason = "zones have at least one axis")
}

/// Shifts an aligned box by `delta` along `axis`, wrapping on the torus.
fn shifted_box(b: &Zone, axis: usize, delta: f64) -> Zone {
    let mut lo: Vec<f64> = (0..b.dims()).map(|a| b.lo(a)).collect();
    let mut hi: Vec<f64> = (0..b.dims()).map(|a| b.hi(a)).collect();
    let side = hi[axis] - lo[axis];
    let mut new_lo = lo[axis] + delta;
    // Wrap into [0, 1).
    if new_lo < 0.0 {
        new_lo += 1.0;
    }
    if new_lo >= 1.0 {
        new_lo -= 1.0;
    }
    // Guard against accumulated error on exact dyadic arithmetic.
    debug_assert!((0.0..1.0).contains(&new_lo));
    lo[axis] = new_lo;
    hi[axis] = new_lo + side;
    Zone::from_bounds(lo, hi).expect("shifted aligned box is valid") // tao-lint: allow(no-unwrap-in-lib, reason = "shifted aligned box is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_topology::NodeIdx;

    fn grown_can(n: u32, dims: usize, seed: u64) -> CanOverlay {
        let mut can = CanOverlay::new(dims).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            can.join(NodeIdx(i), Point::random(dims, &mut rng));
        }
        can
    }

    #[test]
    fn shifted_box_wraps_on_the_torus() {
        let whole = Zone::whole(2);
        let (left, right) = whole.split(0);
        let shifted = shifted_box(&left, 0, 0.5);
        assert_eq!(shifted, right);
        let wrapped = shifted_box(&left, 0, -0.5);
        assert_eq!(wrapped, right);
    }

    #[test]
    fn tables_point_into_the_advertised_box() {
        let can = grown_can(128, 2, 3);
        let ecan = EcanOverlay::build(can, &mut RandomSelector::new(9));
        let mut total_entries = 0;
        for id in ecan.can().live_nodes() {
            for e in ecan.high_order_entries(id) {
                total_entries += 1;
                let rep_zone = ecan.can().zone(e.representative).unwrap();
                assert!(
                    rep_zone.intersects(&e.target_box),
                    "representative {} lies outside its box",
                    e.representative
                );
                assert!(e.order >= 2);
            }
        }
        assert!(total_entries > 0, "a 128-node eCAN must have expressways");
    }

    #[test]
    fn deep_nodes_have_multiple_orders() {
        let can = grown_can(256, 2, 5);
        let ecan = EcanOverlay::build(can, &mut RandomSelector::new(1));
        let max_order = ecan
            .can()
            .live_nodes()
            .flat_map(|id| ecan.high_order_entries(id))
            .map(|e| e.order)
            .max()
            .unwrap();
        assert!(max_order >= 3, "256 nodes should yield order >= 3, got {max_order}");
    }

    #[test]
    fn express_routing_reaches_the_owner() {
        let can = grown_can(200, 2, 7);
        let ecan = EcanOverlay::build(can, &mut RandomSelector::new(2));
        let mut rng = StdRng::seed_from_u64(8);
        let live: Vec<OverlayNodeId> = ecan.can().live_nodes().collect();
        for _ in 0..100 {
            let src = live[rng.gen_range(0..live.len())];
            let target = Point::random(2, &mut rng);
            let route = ecan.route_express(src, &target).unwrap();
            assert_eq!(*route.hops.last().unwrap(), ecan.can().owner(&target));
        }
    }

    #[test]
    fn expressways_shorten_routes_on_average() {
        let can = grown_can(512, 2, 11);
        let ecan = EcanOverlay::build(can, &mut RandomSelector::new(3));
        let mut rng = StdRng::seed_from_u64(1);
        let live: Vec<OverlayNodeId> = ecan.can().live_nodes().collect();
        let mut plain = 0usize;
        let mut express = 0usize;
        for _ in 0..150 {
            let src = live[rng.gen_range(0..live.len())];
            let target = Point::random(2, &mut rng);
            plain += ecan.can().route(src, &target).unwrap().hop_count();
            express += ecan.route_express(src, &target).unwrap().hop_count();
        }
        assert!(
            (express as f64) < 0.7 * plain as f64,
            "expressways should cut hops: plain={plain}, express={express}"
        );
    }

    #[test]
    fn closest_selector_picks_the_nearest_candidate() {
        use tao_topology::{generate_transit_stub, LatencyAssignment, TransitStubParams};
        let topo = generate_transit_stub(
            &TransitStubParams::tsk_small_mini(),
            LatencyAssignment::manual(),
            2,
        );
        let oracle = RttOracle::new(topo.graph().clone());
        let mut can = CanOverlay::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        for i in 0..64 {
            can.join(NodeIdx(i * 3), Point::random(2, &mut rng));
        }
        let mut sel = ClosestSelector::new(oracle.clone());
        let ecan = EcanOverlay::build(can, &mut sel);
        for id in ecan.can().live_nodes() {
            let me = ecan.can().underlay(id);
            for e in ecan.high_order_entries(id) {
                let mut members = ecan.can().nodes_in(&e.target_box);
                members.retain(|&c| c != id);
                let rep_d = oracle.ground_truth(me, ecan.can().underlay(e.representative));
                for m in members {
                    let md = oracle.ground_truth(me, ecan.can().underlay(m));
                    assert!(rep_d <= md, "representative is not the closest member");
                }
            }
        }
    }

    #[test]
    fn sampled_selector_picks_members_of_the_box() {
        let can = grown_can(128, 2, 41);
        let ecan = EcanOverlay::build(can, &mut SampledRandomSelector::new(6));
        let mut total = 0;
        for id in ecan.can().live_nodes() {
            for e in ecan.high_order_entries(id) {
                total += 1;
                assert_ne!(e.representative, id);
                let members = ecan.can().nodes_in(&e.target_box);
                assert!(
                    members.contains(&e.representative),
                    "sampled representative {} outside its box",
                    e.representative
                );
            }
        }
        assert!(total > 0, "sampled tables must not be empty");
        ecan.check_invariants();
    }

    #[test]
    fn reselect_node_changes_only_that_node() {
        let can = grown_can(64, 2, 13);
        let mut ecan = EcanOverlay::build(can, &mut RandomSelector::new(5));
        let live: Vec<OverlayNodeId> = ecan.can().live_nodes().collect();
        let target = live[10];
        let before_other: Vec<_> = ecan.high_order_entries(live[20]);
        ecan.reselect_node(target, &mut RandomSelector::new(999));
        assert_eq!(ecan.high_order_entries(live[20]), before_other);
    }

    #[test]
    fn join_unselected_keeps_routing_correct() {
        let can = grown_can(64, 2, 23);
        let mut ecan = EcanOverlay::build(can, &mut RandomSelector::new(1));
        let mut rng = StdRng::seed_from_u64(24);
        let id = ecan.join_unselected(NodeIdx(9_000), Point::random(2, &mut rng));
        assert!(ecan.high_order_entries(id).is_empty(), "no table until reselect");
        ecan.reselect_node(id, &mut RandomSelector::new(2));
        // Routing from and to the newcomer works.
        let target = ecan.can().zone(id).unwrap().center();
        let live: Vec<OverlayNodeId> = ecan.can().live_nodes().collect();
        let route = ecan.route_express(live[0], &target).unwrap();
        assert_eq!(*route.hops.last().unwrap(), ecan.can().owner(&target));
    }

    #[test]
    fn depart_drops_table_and_dependents_are_found() {
        let can = grown_can(128, 2, 29);
        let mut ecan = EcanOverlay::build(can, &mut RandomSelector::new(3));
        // Find a node referenced by someone's table.
        let victim = ecan
            .can()
            .live_nodes()
            .find(|&id| !ecan.dependents_of(id).is_empty())
            .expect("somebody is a representative");
        let deps = ecan.dependents_of(victim);
        assert!(deps.iter().all(|d| *d != victim));
        ecan.depart(victim).unwrap();
        assert!(ecan.high_order_entries(victim).is_empty());
        assert!(ecan.can().zone(victim).is_err());
        // Dependents re-select and no longer reference the departed node.
        for d in deps {
            ecan.reselect_node(d, &mut RandomSelector::new(4));
            assert!(ecan
                .high_order_entries(d)
                .iter()
                .all(|e| e.representative != victim));
        }
    }

    #[test]
    fn dependents_index_matches_a_table_scan() {
        let can = grown_can(160, 2, 37);
        let mut ecan = EcanOverlay::build(can, &mut RandomSelector::new(7));
        // Churn a little so the index sees table replacement too.
        for id in [4u32, 31, 77] {
            ecan.depart(OverlayNodeId(id)).unwrap();
        }
        let live: Vec<OverlayNodeId> = ecan.can().live_nodes().collect();
        ecan.reselect_node(live[3], &mut RandomSelector::new(8));
        for probe in 0..ecan.can().id_bound() as u32 {
            let probe = OverlayNodeId(probe);
            let mut scan: Vec<OverlayNodeId> = live
                .iter()
                .copied()
                .filter(|&o| {
                    o != probe
                        && ecan
                            .high_order_entries(o)
                            .iter()
                            .any(|e| e.representative == probe)
                })
                .collect();
            scan.sort();
            assert_eq!(
                ecan.dependents_of(probe),
                scan,
                "reverse index diverged for {probe}"
            );
        }
    }

    #[test]
    fn incremental_join_and_depart_keep_tables_sound() {
        let can = grown_can(96, 2, 43);
        let mut sel = RandomSelector::new(11);
        let mut ecan = EcanOverlay::build(can, &mut sel);
        let mut rng = StdRng::seed_from_u64(44);
        // Interleave incremental joins and departures; invariants must hold
        // after every step with no global reselect.
        for i in 0..40u32 {
            if i % 3 == 2 {
                let live: Vec<OverlayNodeId> = ecan.can().live_nodes().collect();
                let victim = live[rng.gen_range(0..live.len())];
                ecan.depart_and_repair(victim, &mut sel).unwrap();
            } else {
                ecan.join_and_select(NodeIdx(10_000 + i), Point::random(2, &mut rng), &mut sel);
            }
            ecan.check_invariants();
        }
        // Express routing still reaches owners after pure-incremental churn.
        let live: Vec<OverlayNodeId> = ecan.can().live_nodes().collect();
        for _ in 0..50 {
            let src = live[rng.gen_range(0..live.len())];
            let target = Point::random(2, &mut rng);
            let route = ecan.route_express(src, &target).unwrap();
            assert_eq!(*route.hops.last().unwrap(), ecan.can().owner(&target));
        }
    }

    mod properties {
        use super::*;
        use tao_util::check::for_all;
        use tao_util::rand::Rng;
        use tao_util::{check, check_eq, check_ne};

        /// For any overlay size and seed, express routing terminates at
        /// the owner of the target point.
        #[test]
        fn express_routing_always_reaches_the_owner() {
            for_all("express_routing_always_reaches_the_owner", 24, |rng| {
                let n = rng.gen_range(4u32..96);
                let seed: u64 = rng.gen();
                let tx = rng.gen_range(0.0f64..1.0);
                let ty = rng.gen_range(0.0f64..1.0);
                let can = grown_can(n, 2, seed);
                let ecan = EcanOverlay::build(can, &mut RandomSelector::new(seed ^ 1));
                let live: Vec<OverlayNodeId> = ecan.can().live_nodes().collect();
                let target = Point::clamped(vec![tx, ty]);
                let route = ecan
                    .route_express(live[(seed as usize) % live.len()], &target)
                    .expect("routing succeeds on a consistent overlay");
                check_eq!(
                    *route.hops.last().expect("non-empty"),
                    ecan.can().owner(&target),
                    "n={n} seed={seed:#x}"
                );
            });
        }

        /// High-order tables never reference the owner itself and every
        /// representative is live.
        #[test]
        fn tables_are_well_formed() {
            for_all("tables_are_well_formed", 24, |rng| {
                let n = rng.gen_range(8u32..80);
                let seed: u64 = rng.gen();
                let can = grown_can(n, 2, seed);
                let ecan = EcanOverlay::build(can, &mut RandomSelector::new(seed ^ 2));
                for id in ecan.can().live_nodes() {
                    for e in ecan.high_order_entries(id) {
                        check_ne!(e.representative, id);
                        check!(
                            ecan.can().zone(e.representative).is_ok(),
                            "dead representative, n={n} seed={seed:#x}"
                        );
                    }
                }
            });
        }

        /// Incremental maintenance and enumeration-free selection agree
        /// with the invariant checker across random churn schedules.
        #[test]
        fn incremental_churn_preserves_invariants() {
            for_all("incremental_churn_preserves_invariants", 16, |rng| {
                let n = rng.gen_range(16u32..64);
                let seed: u64 = rng.gen();
                let can = grown_can(n, 2, seed);
                let mut sel = SampledRandomSelector::new(seed ^ 3);
                let mut ecan = EcanOverlay::build(can, &mut sel);
                for i in 0..12u32 {
                    if rng.gen_bool(0.4) && ecan.can().len() > 4 {
                        let live: Vec<OverlayNodeId> = ecan.can().live_nodes().collect();
                        let victim = live[rng.gen_range(0..live.len())];
                        ecan.depart_and_repair(victim, &mut sel).expect("live victim");
                    } else {
                        let x = rng.gen_range(0.0f64..1.0);
                        let y = rng.gen_range(0.0f64..1.0);
                        ecan.join_and_select(
                            NodeIdx(50_000 + i),
                            Point::clamped(vec![x, y]),
                            &mut sel,
                        );
                    }
                }
                ecan.check_invariants();
                check!(ecan.can().len() > 0, "overlay emptied, seed={seed:#x}");
            });
        }
    }

    #[test]
    fn enclosing_zones_nest() {
        let can = grown_can(128, 2, 19);
        let ecan = EcanOverlay::build(can, &mut RandomSelector::new(4));
        for id in ecan.can().live_nodes() {
            let zones = ecan.enclosing_high_order_zones(id);
            let my_zone = ecan.can().zone(id).unwrap();
            for w in zones.windows(2) {
                assert!(w[1].contains_zone(&w[0]), "high-order zones must nest");
            }
            if let Some(smallest) = zones.first() {
                assert!(smallest.contains_zone(&my_zone));
            }
        }
    }
}
