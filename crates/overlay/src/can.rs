//! The base CAN overlay: zone ownership, join/departure, neighbor tables,
//! owner lookup, and greedy routing.
//!
//! Ownership is tracked in a binary *zone tree* mirroring the history of
//! splits, which gives `O(depth)` owner lookup and range queries — the same
//! information a real deployment reconstructs by routing, available here
//! without simulating every control message. Neighbor tables are maintained
//! incrementally on join/departure exactly as the CAN protocol would.

use tao_util::det::DetSet;
use std::error::Error;
use std::fmt;

use tao_topology::NodeIdx;

use crate::point::Point;
use crate::zone::Zone;
use crate::zone_index::{IndexHit, ZoneIndex};

/// Identifies a node in an overlay. Dense per overlay; ids of departed
/// nodes are *not* reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OverlayNodeId(pub u32);

impl OverlayNodeId {
    /// The id as a `usize`, for slice addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OverlayNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Errors from overlay operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlayError {
    /// The node id does not exist or has departed.
    UnknownNode(OverlayNodeId),
    /// The point's dimensionality does not match the overlay's.
    DimensionMismatch {
        /// The overlay's dimensionality.
        expected: usize,
        /// The point's dimensionality.
        got: usize,
    },
    /// The last node cannot depart.
    LastNode,
    /// Greedy routing failed to make progress (should not happen on a
    /// consistent overlay; surfaced rather than looping forever).
    RoutingStuck {
        /// Node at which progress stopped.
        at: OverlayNodeId,
    },
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::UnknownNode(id) => write!(f, "unknown or departed overlay node {id}"),
            OverlayError::DimensionMismatch { expected, got } => {
                write!(f, "expected a {expected}-d point, got {got}-d")
            }
            OverlayError::LastNode => write!(f, "the last node cannot depart"),
            OverlayError::RoutingStuck { at } => {
                write!(f, "greedy routing made no progress at {at}")
            }
        }
    }
}

impl Error for OverlayError {}

/// The result of routing a message: the nodes visited, in order, starting
/// with the source and ending with the owner of the target point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Visited nodes, source first.
    pub hops: Vec<OverlayNodeId>,
}

impl Route {
    /// Number of overlay hops (edges traversed).
    pub fn hop_count(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }
}

/// Zone-tree node: either a leaf owned by an overlay node or an internal
/// split.
#[derive(Debug, Clone)]
enum TreeNode {
    Leaf(OverlayNodeId),
    Split {
        axis: usize,
        mid: f64,
        lower: Box<TreeNode>,
        upper: Box<TreeNode>,
    },
}

#[derive(Debug, Clone)]
struct NodeState {
    underlay: NodeIdx,
    /// Zones owned by this node. The first is the *primary* zone acquired at
    /// join; later entries are zones taken over from departed neighbors.
    zones: Vec<Zone>,
    /// Depth of the primary zone in the split tree (splits from the root).
    depth: u32,
    neighbors: DetSet<OverlayNodeId>,
    alive: bool,
}

impl NodeState {
    fn primary(&self) -> &Zone {
        &self.zones[0]
    }

    fn owns_point(&self, p: &Point) -> bool {
        self.zones.iter().any(|z| z.contains(p))
    }

    fn distance_to_point(&self, p: &Point) -> f64 {
        self.zones
            .iter()
            .map(|z| z.distance_to_point(p))
            .fold(f64::INFINITY, f64::min)
    }
}

/// A content-addressable network over `[0,1)^d`.
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug, Clone)]
pub struct CanOverlay {
    dims: usize,
    nodes: Vec<NodeState>,
    tree: Option<TreeNode>,
    live_count: usize,
    /// Morton index over live zones, maintained incrementally on
    /// join/split/departure; serves aligned-cube `nodes_in` queries
    /// without walking the split tree.
    index: ZoneIndex,
}

impl CanOverlay {
    /// Creates an empty overlay of dimensionality `dims`.
    ///
    /// Returns `None` if `dims` is zero.
    pub fn new(dims: usize) -> Option<Self> {
        if dims == 0 {
            return None;
        }
        Some(CanOverlay {
            dims,
            nodes: Vec::new(),
            tree: None,
            live_count: 0,
            index: ZoneIndex::new(dims),
        })
    }

    /// Dimensionality of the Cartesian space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// `true` if no node has joined (or all departed).
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Ids of all live nodes.
    pub fn live_nodes(&self) -> impl Iterator<Item = OverlayNodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive)
            .map(|(i, _)| OverlayNodeId(i as u32))
    }

    /// The underlay router a live overlay node runs on.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never assigned.
    pub fn underlay(&self, id: OverlayNodeId) -> NodeIdx {
        self.nodes[id.index()].underlay
    }

    /// The zone a live node owns.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] if `id` is unknown or departed.
    pub fn zone(&self, id: OverlayNodeId) -> Result<&Zone, OverlayError> {
        let s = self
            .nodes
            .get(id.index())
            .ok_or(OverlayError::UnknownNode(id))?;
        if !s.alive {
            return Err(OverlayError::UnknownNode(id));
        }
        Ok(s.primary())
    }

    /// All zones a live node owns: the primary zone first, then any zones
    /// taken over from departed neighbors.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] if `id` is unknown or departed.
    pub fn zones(&self, id: OverlayNodeId) -> Result<&[Zone], OverlayError> {
        self.zone(id)?;
        Ok(&self.nodes[id.index()].zones)
    }

    /// Zone-tree depth of a live node's zone.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] if `id` is unknown or departed.
    pub fn depth(&self, id: OverlayNodeId) -> Result<u32, OverlayError> {
        self.zone(id)?;
        Ok(self.nodes[id.index()].depth)
    }

    /// `true` if live node `id` owns `point` through any of its zones.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] if `id` is unknown or departed.
    pub fn owns_point(&self, id: OverlayNodeId, point: &Point) -> Result<bool, OverlayError> {
        self.zone(id)?;
        Ok(self.nodes[id.index()].owns_point(point))
    }

    /// Minimum torus distance from any of `id`'s zones to `point` (0 when
    /// the node owns the point).
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] if `id` is unknown or departed.
    pub fn distance_to_point(&self, id: OverlayNodeId, point: &Point) -> Result<f64, OverlayError> {
        self.zone(id)?;
        Ok(self.nodes[id.index()].distance_to_point(point))
    }

    /// The CAN neighbors of a live node.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] if `id` is unknown or departed.
    pub fn neighbors(&self, id: OverlayNodeId) -> Result<Vec<OverlayNodeId>, OverlayError> {
        self.zone(id)?;
        let mut v: Vec<OverlayNodeId> = self.nodes[id.index()].neighbors.iter().copied().collect();
        v.sort();
        Ok(v)
    }

    /// The owner of `point`.
    ///
    /// # Panics
    ///
    /// Panics if the overlay is empty or the point has the wrong
    /// dimensionality.
    pub fn owner(&self, point: &Point) -> OverlayNodeId {
        assert_eq!(point.dims(), self.dims, "dimensionality mismatch");
        let mut node = self.tree.as_ref().expect("overlay is empty"); // tao-lint: allow(no-unwrap-in-lib, reason = "overlay is empty")
        loop {
            match node {
                TreeNode::Leaf(id) => return *id,
                TreeNode::Split { axis, mid, lower, upper } => {
                    node = if point.coord(*axis) < *mid { lower } else { upper };
                }
            }
        }
    }

    /// All live nodes whose zones intersect `query` (positive volume).
    ///
    /// Aligned-cube queries (the only kind the eCAN expressway tables
    /// issue) are answered from the incremental Morton zone index — one
    /// contiguous range scan instead of a split-tree walk. Other query
    /// shapes fall back to [`CanOverlay::nodes_in_scan`].
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ.
    pub fn nodes_in(&self, query: &Zone) -> Vec<OverlayNodeId> {
        assert_eq!(query.dims(), self.dims, "dimensionality mismatch");
        if self.tree.is_none() {
            return Vec::new();
        }
        match self.index.lookup(query) {
            Some(IndexHit::Members(mut out)) => {
                out.sort();
                out
            }
            // The cube sits strictly inside one zone; its centre names it.
            Some(IndexHit::Enclosed) => vec![self.owner(&query.center())],
            None => self.nodes_in_scan(query),
        }
    }

    /// Tree-walk implementation of [`CanOverlay::nodes_in`]: visits every
    /// split node whose region intersects `query`. Kept as the fallback
    /// for non-cube queries and as the benchmark "before" kernel.
    pub fn nodes_in_scan(&self, query: &Zone) -> Vec<OverlayNodeId> {
        assert_eq!(query.dims(), self.dims, "dimensionality mismatch");
        let mut out = Vec::new();
        if let Some(root) = &self.tree {
            let whole = Zone::whole(self.dims);
            self.collect_in(root, &whole, query, &mut out);
        }
        out.sort();
        out
    }

    /// Number of live nodes whose zones intersect `query`, without
    /// sorting them.
    pub fn count_in(&self, query: &Zone) -> usize {
        if self.tree.is_none() {
            return 0;
        }
        match self.index.lookup(query) {
            Some(IndexHit::Members(out)) => out.len(),
            Some(IndexHit::Enclosed) => 1,
            None => self.nodes_in_scan(query).len(),
        }
    }

    /// A uniformly-random-ish live member of `query` (weighted by zone
    /// count, not volume), in O(depth) — usable where enumerating a huge
    /// high-order zone would be wasteful. Returns `None` on an empty
    /// overlay or when `query` intersects no zone (impossible for boxes of
    /// positive volume, since zones tile the space).
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ.
    pub fn sample_in(&self, query: &Zone, rng: &mut impl tao_util::rand::Rng) -> Option<OverlayNodeId> {
        assert_eq!(query.dims(), self.dims, "dimensionality mismatch");
        let root = self.tree.as_ref()?;
        let whole = Zone::whole(self.dims);
        Self::sample_node(root, &whole, query, rng)
    }

    fn sample_node(
        node: &TreeNode,
        bounds: &Zone,
        query: &Zone,
        rng: &mut impl tao_util::rand::Rng,
    ) -> Option<OverlayNodeId> {
        if !bounds.intersects(query) {
            return None;
        }
        match node {
            TreeNode::Leaf(id) => Some(*id),
            TreeNode::Split { axis, lower, upper, .. } => {
                let (lz, uz) = bounds.split(*axis);
                let lo_ok = lz.intersects(query);
                let hi_ok = uz.intersects(query);
                match (lo_ok, hi_ok) {
                    (true, true) => {
                        if rng.gen_bool(0.5) {
                            Self::sample_node(lower, &lz, query, rng)
                        } else {
                            Self::sample_node(upper, &uz, query, rng)
                        }
                    }
                    (true, false) => Self::sample_node(lower, &lz, query, rng),
                    (false, true) => Self::sample_node(upper, &uz, query, rng),
                    (false, false) => None,
                }
            }
        }
    }

    fn collect_in(
        &self,
        node: &TreeNode,
        bounds: &Zone,
        query: &Zone,
        out: &mut Vec<OverlayNodeId>,
    ) {
        if !bounds.intersects(query) {
            return;
        }
        match node {
            TreeNode::Leaf(id) => out.push(*id),
            TreeNode::Split { axis, lower, upper, .. } => {
                let (lz, uz) = bounds.split(*axis);
                self.collect_in(lower, &lz, query, out);
                self.collect_in(upper, &uz, query, out);
            }
        }
    }

    /// Joins a node running on underlay router `underlay` at `point`,
    /// splitting the owner's zone. Returns the new node's id.
    ///
    /// # Panics
    ///
    /// Panics if the point has the wrong dimensionality.
    pub fn join(&mut self, underlay: NodeIdx, point: Point) -> OverlayNodeId {
        assert_eq!(point.dims(), self.dims, "dimensionality mismatch");
        let new_id = OverlayNodeId(self.nodes.len() as u32);
        if self.tree.is_none() {
            // Bootstrap node owns the whole space.
            self.nodes.push(NodeState {
                underlay,
                zones: vec![Zone::whole(self.dims)],
                depth: 0,
                neighbors: DetSet::new(),
                alive: true,
            });
            self.tree = Some(TreeNode::Leaf(new_id));
            self.live_count = 1;
            self.index.insert(&Zone::whole(self.dims), new_id);
            return new_id;
        }

        let owner = self.owner(&point);
        // Split the specific zone that contains the join point (the owner
        // may hold extra zones taken over from departed neighbors).
        let zone_idx = self.nodes[owner.index()]
            .zones
            .iter()
            .position(|z| z.contains(&point))
            .expect("owner's zones cover the join point"); // tao-lint: allow(no-unwrap-in-lib, reason = "owner's zones cover the join point")
        let owner_zone = self.nodes[owner.index()].zones[zone_idx].clone();
        // CAN splits in half along the widest axis (ties -> lowest axis),
        // which reproduces round-robin splitting on dyadic zones and stays
        // well-defined for taken-over zones.
        let axis = widest_axis(&owner_zone);
        let (lower, upper) = owner_zone.split(axis);
        // New node takes the half containing its join point.
        let (new_zone, old_zone) = if lower.contains(&point) {
            (lower, upper)
        } else {
            (upper, lower)
        };

        self.nodes.push(NodeState {
            underlay,
            zones: vec![new_zone.clone()],
            depth: 0, // recomputed below from geometry
            neighbors: DetSet::new(),
            alive: true,
        });
        self.live_count += 1;

        // Update the zone tree: replace the leaf at the join point with a
        // split.
        let mid = (owner_zone.lo(axis) + owner_zone.hi(axis)) / 2.0;
        let (lower_id, upper_id) = if new_zone.lo(axis) > old_zone.lo(axis) {
            (owner, new_id)
        } else {
            (new_id, owner)
        };
        Self::replace_leaf_at_point(
            self.tree.as_mut().expect("tree is non-empty"), // tao-lint: allow(no-unwrap-in-lib, reason = "tree is non-empty")
            &point,
            TreeNode::Split {
                axis,
                mid,
                lower: Box::new(TreeNode::Leaf(lower_id)),
                upper: Box::new(TreeNode::Leaf(upper_id)),
            },
        );

        // Update the zone index: the split zone is replaced by its halves.
        self.index.remove(&owner_zone);
        self.index.insert(&old_zone, owner);
        self.index.insert(&new_zone, new_id);

        // Update owner's zone and both depths.
        self.nodes[owner.index()].zones[zone_idx] = old_zone;
        self.nodes[owner.index()].depth = split_depth(self.nodes[owner.index()].primary());
        self.nodes[new_id.index()].depth = split_depth(self.nodes[new_id.index()].primary());

        // Rebuild neighbor sets of the two halves from the owner's previous
        // neighborhood (plus each other).
        let mut candidates: Vec<OverlayNodeId> = self.nodes[owner.index()]
            .neighbors
            .iter()
            .copied()
            .collect();
        candidates.push(owner);
        candidates.push(new_id);
        // Drop all old links to `owner`; they are recomputed below.
        for &c in &candidates {
            self.nodes[c.index()].neighbors.remove(&owner);
        }
        self.nodes[owner.index()].neighbors.clear();
        for &a in &[owner, new_id] {
            for &c in &candidates {
                if a == c {
                    continue;
                }
                let adjacent = zones_adjacent(
                    &self.nodes[a.index()].zones,
                    &self.nodes[c.index()].zones,
                );
                if adjacent {
                    self.nodes[a.index()].neighbors.insert(c);
                    self.nodes[c.index()].neighbors.insert(a);
                }
            }
        }
        new_id
    }

    /// Replaces the leaf whose region contains `point` — O(depth).
    fn replace_leaf_at_point(node: &mut TreeNode, point: &Point, replacement: TreeNode) {
        match node {
            TreeNode::Leaf(_) => *node = replacement,
            TreeNode::Split { axis, mid, lower, upper } => {
                if point.coord(*axis) < *mid {
                    Self::replace_leaf_at_point(lower, point, replacement);
                } else {
                    Self::replace_leaf_at_point(upper, point, replacement);
                }
            }
        }
    }

    /// Departs a node. Its zone is taken over by the smallest-volume CAN
    /// neighbor (the departing node's state is retired; the taker's zone set
    /// is represented by re-rooting the leaf to the taker).
    ///
    /// The taker may end up owning a non-box region; for simplicity and
    /// faithfulness to zone accounting, the taker's `zone` field keeps its
    /// original box while the zone tree records the extra leaf, so owner
    /// lookup and routing stay exact.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] if `id` is unknown or departed,
    /// and [`OverlayError::LastNode`] if `id` is the only live node.
    pub fn leave(&mut self, id: OverlayNodeId) -> Result<(), OverlayError> {
        self.zone(id)?;
        if self.live_count == 1 {
            return Err(OverlayError::LastNode);
        }
        // Pick the smallest-volume neighbor as the taker.
        let taker = self.nodes[id.index()]
            .neighbors
            .iter()
            .copied()
            .min_by(|a, b| {
                let va: f64 = self.nodes[a.index()].zones.iter().map(Zone::volume).sum();
                let vb: f64 = self.nodes[b.index()].zones.iter().map(Zone::volume).sum();
                va.total_cmp(&vb).then(a.cmp(b))
            })
            .expect("a live non-last node has at least one neighbor"); // tao-lint: allow(no-unwrap-in-lib, reason = "a live non-last node has at least one neighbor")

        // Re-point the departing node's leaf (or leaves, if it had taken
        // over zones itself) at the taker.
        if let Some(root) = self.tree.as_mut() {
            Self::retarget_leaves(root, id, taker);
        }

        // The taker now owns all of the departing node's zones.
        let departed_zones = std::mem::take(&mut self.nodes[id.index()].zones);
        for z in &departed_zones {
            self.index.reassign(z, taker);
        }
        self.nodes[taker.index()].zones.extend(departed_zones);

        // The taker inherits the departing node's neighbors.
        let old_neighbors: Vec<OverlayNodeId> =
            self.nodes[id.index()].neighbors.iter().copied().collect();
        for n in &old_neighbors {
            self.nodes[n.index()].neighbors.remove(&id);
        }
        for n in old_neighbors {
            if n == taker {
                continue;
            }
            // Conservative: the taker now owns the departed zone, so every
            // neighbor of that zone becomes a neighbor of the taker.
            self.nodes[taker.index()].neighbors.insert(n);
            self.nodes[n.index()].neighbors.insert(taker);
        }
        self.nodes[id.index()].neighbors.clear();
        self.nodes[id.index()].alive = false;
        self.live_count -= 1;
        Ok(())
    }

    fn retarget_leaves(node: &mut TreeNode, from: OverlayNodeId, to: OverlayNodeId) {
        match node {
            TreeNode::Leaf(id) => {
                if *id == from {
                    *id = to;
                }
            }
            TreeNode::Split { lower, upper, .. } => {
                Self::retarget_leaves(lower, from, to);
                Self::retarget_leaves(upper, from, to);
            }
        }
    }

    /// Routes greedily from `source` toward the owner of `target` using only
    /// default CAN neighbors: each hop forwards to the neighbor whose zone is
    /// closest to the target point.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] for a dead source,
    /// [`OverlayError::DimensionMismatch`] for a bad target, and
    /// [`OverlayError::RoutingStuck`] if greedy progress stalls.
    pub fn route(&self, source: OverlayNodeId, target: &Point) -> Result<Route, OverlayError> {
        if target.dims() != self.dims {
            return Err(OverlayError::DimensionMismatch {
                expected: self.dims,
                got: target.dims(),
            });
        }
        self.zone(source)?;
        let mut hops = vec![source];
        let mut current = source;
        // Greedy with a visited set: strictly-decreasing progress can fail
        // at zone corners, so permit sideways moves but never revisit.
        let mut visited: DetSet<OverlayNodeId> = DetSet::new();
        visited.insert(source);
        let limit = 4 * self.nodes.len() + 16;
        while !self.nodes[current.index()].owns_point(target) {
            if hops.len() > limit {
                return Err(OverlayError::RoutingStuck { at: current });
            }
            let next = self.nodes[current.index()]
                .neighbors
                .iter()
                .copied()
                .filter(|n| !visited.contains(n))
                .min_by(|a, b| {
                    let da = self.nodes[a.index()].distance_to_point(target);
                    let db = self.nodes[b.index()].distance_to_point(target);
                    da.total_cmp(&db).then(a.cmp(b))
                })
                .ok_or(OverlayError::RoutingStuck { at: current })?;
            visited.insert(next);
            hops.push(next);
            current = next;
        }
        Ok(Route { hops })
    }

    /// Verifies structural invariants; used by tests and debug assertions.
    ///
    /// Checks that live zones tile the space (volumes sum to 1), that
    /// neighbor sets are symmetric and match geometric adjacency.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        if self.is_empty() {
            return;
        }
        let total: f64 = self
            .live_nodes()
            .map(|id| self.nodes[id.index()].zones.iter().map(Zone::volume).sum::<f64>())
            .sum();
        // Splits move volume and takeovers transfer whole zones, so live
        // zones always tile the space exactly (up to fp accumulation).
        assert!(
            (total - 1.0).abs() <= 1e-6,
            "zone volumes must tile the space: {total}"
        );
        for a in self.live_nodes() {
            for &b in &self.nodes[a.index()].neighbors {
                assert!(
                    self.nodes[b.index()].alive,
                    "{a} links to departed node {b}"
                );
                assert!(
                    self.nodes[b.index()].neighbors.contains(&a),
                    "neighbor link {a}->{b} is not symmetric"
                );
            }
        }
    }
}

/// The axis along which `zone` is widest (ties break to the lowest axis) —
/// the CAN split axis.
fn widest_axis(zone: &Zone) -> usize {
    (0..zone.dims())
        .max_by(|&a, &b| {
            zone.extent(a)
                .partial_cmp(&zone.extent(b))
                .expect("extents are finite") // tao-lint: allow(no-unwrap-in-lib, reason = "extents are finite")
                .then(b.cmp(&a)) // prefer the lower axis on ties
        })
        .expect("zones have at least one axis") // tao-lint: allow(no-unwrap-in-lib, reason = "zones have at least one axis")
}

/// Number of binary splits that produced `zone` from the whole space:
/// the sum over axes of log2(1/extent).
fn split_depth(zone: &Zone) -> u32 {
    (0..zone.dims())
        .map(|a| (-zone.extent(a).log2()).round() as u32)
        .sum()
}

/// `true` if any zone of `a` is a CAN neighbor of any zone of `b`.
fn zones_adjacent(a: &[Zone], b: &[Zone]) -> bool {
    a.iter().any(|za| b.iter().any(|zb| za.is_neighbor(zb)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_util::rand::rngs::StdRng;
    use tao_util::rand::{Rng, SeedableRng};

    fn grown_overlay(n: usize, seed: u64) -> CanOverlay {
        let mut can = CanOverlay::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            can.join(NodeIdx(i as u32), Point::random(2, &mut rng));
        }
        can
    }

    #[test]
    fn bootstrap_owns_everything() {
        let mut can = CanOverlay::new(2).unwrap();
        let a = can.join(NodeIdx(0), Point::new(vec![0.3, 0.3]).unwrap());
        assert_eq!(can.len(), 1);
        assert_eq!(can.owner(&Point::new(vec![0.9, 0.9]).unwrap()), a);
        assert_eq!(can.zone(a).unwrap(), &Zone::whole(2));
    }

    #[test]
    fn join_splits_the_owners_zone() {
        let mut can = CanOverlay::new(2).unwrap();
        let a = can.join(NodeIdx(0), Point::new(vec![0.3, 0.3]).unwrap());
        let b = can.join(NodeIdx(1), Point::new(vec![0.9, 0.9]).unwrap());
        // First split is along axis 0; b's point is in the upper half.
        assert_eq!(can.zone(b).unwrap().lo(0), 0.5);
        assert_eq!(can.zone(a).unwrap().hi(0), 0.5);
        assert_eq!(can.neighbors(a).unwrap(), vec![b]);
        assert_eq!(can.neighbors(b).unwrap(), vec![a]);
        can.check_invariants();
    }

    #[test]
    fn zones_tile_the_space() {
        let can = grown_overlay(64, 7);
        let total: f64 = can
            .live_nodes()
            .map(|id| can.zone(id).unwrap().volume())
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "zones must tile: {total}");
        can.check_invariants();
    }

    #[test]
    fn owner_lookup_agrees_with_zone_containment() {
        let can = grown_overlay(50, 3);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let p = Point::random(2, &mut rng);
            let owner = can.owner(&p);
            assert!(can.zone(owner).unwrap().contains(&p));
        }
    }

    #[test]
    fn neighbor_sets_match_geometry() {
        let can = grown_overlay(40, 9);
        let live: Vec<OverlayNodeId> = can.live_nodes().collect();
        for &a in &live {
            for &b in &live {
                if a == b {
                    continue;
                }
                let geometric = can
                    .zone(a)
                    .unwrap()
                    .is_neighbor(can.zone(b).unwrap());
                let listed = can.neighbors(a).unwrap().contains(&b);
                assert_eq!(
                    geometric, listed,
                    "adjacency mismatch between {a} and {b}"
                );
            }
        }
    }

    #[test]
    fn routing_reaches_the_owner() {
        let can = grown_overlay(100, 5);
        let mut rng = StdRng::seed_from_u64(13);
        let live: Vec<OverlayNodeId> = can.live_nodes().collect();
        for _ in 0..100 {
            let src = live[rng.gen_range(0..live.len())];
            let target = Point::random(2, &mut rng);
            let route = can.route(src, &target).unwrap();
            assert_eq!(route.hops[0], src);
            assert_eq!(*route.hops.last().unwrap(), can.owner(&target));
        }
    }

    #[test]
    fn routing_hops_scale_like_sqrt_n_in_2d() {
        let can = grown_overlay(256, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let live: Vec<OverlayNodeId> = can.live_nodes().collect();
        let mut total = 0usize;
        const ROUTES: usize = 200;
        for _ in 0..ROUTES {
            let src = live[rng.gen_range(0..live.len())];
            let target = Point::random(2, &mut rng);
            total += can.route(src, &target).unwrap().hop_count();
        }
        let avg = total as f64 / ROUTES as f64;
        // Theory: (d/4) * n^(1/d) = 8 for n=256, d=2. Allow generous slack.
        assert!(avg > 2.0 && avg < 20.0, "avg hops {avg} looks wrong");
    }

    #[test]
    fn departure_hands_zone_to_a_neighbor() {
        let mut can = grown_overlay(20, 21);
        let victim = OverlayNodeId(7);
        let victim_zone = can.zone(victim).unwrap().clone();
        let probe = victim_zone.center();
        can.leave(victim).unwrap();
        assert_eq!(can.len(), 19);
        let new_owner = can.owner(&probe);
        assert_ne!(new_owner, victim);
        assert!(can.zone(new_owner).is_ok());
        assert!(can.zone(victim).is_err());
        can.check_invariants();
    }

    #[test]
    fn routing_still_works_after_churn() {
        let mut can = grown_overlay(60, 17);
        let mut rng = StdRng::seed_from_u64(3);
        for id in [3u32, 14, 25, 36, 47] {
            can.leave(OverlayNodeId(id)).unwrap();
        }
        let live: Vec<OverlayNodeId> = can.live_nodes().collect();
        for _ in 0..100 {
            let src = live[rng.gen_range(0..live.len())];
            let target = Point::random(2, &mut rng);
            let route = can.route(src, &target).unwrap();
            assert_eq!(*route.hops.last().unwrap(), can.owner(&target));
        }
    }

    #[test]
    fn last_node_cannot_leave() {
        let mut can = CanOverlay::new(2).unwrap();
        let a = can.join(NodeIdx(0), Point::new(vec![0.5, 0.5]).unwrap());
        assert_eq!(can.leave(a), Err(OverlayError::LastNode));
    }

    #[test]
    fn nodes_in_returns_intersecting_zones() {
        let can = grown_overlay(32, 8);
        let (left, _) = Zone::whole(2).split(0);
        let inside = can.nodes_in(&left);
        assert!(!inside.is_empty());
        for id in inside {
            assert!(can.zone(id).unwrap().intersects(&left));
        }
        // Whole space returns everyone.
        assert_eq!(can.nodes_in(&Zone::whole(2)).len(), 32);
    }

    #[test]
    fn sample_in_returns_members_of_the_query_box() {
        let can = grown_overlay(64, 12);
        let (left, _) = Zone::whole(2).split(0);
        let members = can.nodes_in(&left);
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..100 {
            let s = can.sample_in(&left, &mut rng).expect("left half is populated");
            assert!(members.contains(&s), "{s} is not a member of the box");
        }
        assert_eq!(can.count_in(&Zone::whole(2)), 64);
    }

    #[test]
    fn sample_in_covers_more_than_one_member() {
        let can = grown_overlay(64, 15);
        let (left, _) = Zone::whole(2).split(0);
        let mut rng = StdRng::seed_from_u64(16);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(can.sample_in(&left, &mut rng).expect("populated"));
        }
        assert!(seen.len() > 3, "sampling should reach many members, got {}", seen.len());
    }

    #[test]
    fn indexed_nodes_in_matches_tree_walk() {
        // The Morton index must reproduce the tree walk byte-for-byte on
        // aligned cubes — including duplicate ids after takeovers — at
        // every dimensionality the experiments use.
        for d in 2..=5usize {
            let mut can = CanOverlay::new(d).unwrap();
            let mut rng = StdRng::seed_from_u64(31 + d as u64);
            for i in 0..128 {
                can.join(NodeIdx(i), Point::random(d, &mut rng));
            }
            // Churn so takers own several zones (duplicates in nodes_in).
            for id in [5u32, 17, 40, 77, 99] {
                can.leave(OverlayNodeId(id)).unwrap();
            }
            for level in 0..=4u32 {
                let side = 0.5f64.powi(level as i32);
                let cells = 1u32 << level;
                for _ in 0..20 {
                    let lo: Vec<f64> = (0..d)
                        .map(|_| rng.gen_range(0..cells) as f64 * side)
                        .collect();
                    let hi: Vec<f64> = lo.iter().map(|l| l + side).collect();
                    let cube = Zone::from_bounds(lo, hi).unwrap();
                    assert_eq!(
                        can.nodes_in(&cube),
                        can.nodes_in_scan(&cube),
                        "index/scan divergence at d={d} level={level}"
                    );
                    assert_eq!(can.count_in(&cube), can.nodes_in_scan(&cube).len());
                }
            }
        }
    }

    #[test]
    fn enclosed_cube_resolves_to_the_surrounding_zone_owner() {
        let mut can = CanOverlay::new(2).unwrap();
        can.join(NodeIdx(0), Point::new(vec![0.1, 0.1]).unwrap());
        // A deep cube strictly inside the single whole-space zone.
        let cube = Zone::from_bounds(vec![0.25, 0.25], vec![0.375, 0.375]).unwrap();
        assert_eq!(can.nodes_in(&cube), vec![OverlayNodeId(0)]);
        assert_eq!(can.count_in(&cube), 1);
    }

    #[test]
    fn errors_display_cleanly() {
        assert_eq!(
            OverlayError::UnknownNode(OverlayNodeId(5)).to_string(),
            "unknown or departed overlay node o5"
        );
        assert!(OverlayError::DimensionMismatch { expected: 2, got: 3 }
            .to_string()
            .contains("2-d"));
    }

    #[test]
    fn higher_dimensional_overlays_work() {
        for d in 3..=5 {
            let mut can = CanOverlay::new(d).unwrap();
            let mut rng = StdRng::seed_from_u64(d as u64);
            for i in 0..32 {
                can.join(NodeIdx(i), Point::random(d, &mut rng));
            }
            can.check_invariants();
            let total: f64 = can
                .live_nodes()
                .map(|id| can.zone(id).unwrap().volume())
                .sum();
            assert!((total - 1.0).abs() < 1e-9);
            let live: Vec<OverlayNodeId> = can.live_nodes().collect();
            let route = can.route(live[0], &Point::random(d, &mut rng)).unwrap();
            assert!(route.hop_count() < 32);
        }
    }
}
