//! The base CAN overlay: zone ownership, join/departure, neighbor tables,
//! owner lookup, and greedy routing.
//!
//! Ownership is tracked in a binary *zone tree* mirroring the history of
//! splits, which gives `O(depth)` owner lookup and range queries — the same
//! information a real deployment reconstructs by routing, available here
//! without simulating every control message. Neighbor tables are maintained
//! incrementally on join/departure exactly as the CAN protocol would.
//!
//! # Storage layout
//!
//! Node state lives in a struct-of-arrays arena keyed by the dense
//! [`OverlayNodeId`]: one parallel array per field (`underlay`, `depth`,
//! `alive`, sorted neighbor lists) plus a single flat `bounds` array holding
//! every node's primary-zone bounds contiguously (`2 * dims` doubles per
//! node, lows then highs). The routing sweep — "which neighbor's zone is
//! closest to the target point?" — therefore reads consecutive cache lines
//! instead of chasing a `Box<Zone>` per candidate. Zones taken over from
//! departed neighbors are rare and stay in a per-node spill vector. The
//! split tree is likewise an index-linked arena (`Vec` of nodes with `u32`
//! children) rather than a pointer tree.
//!
//! Neighbor lists are kept sorted by id, which reproduces the iteration
//! order of the `DetSet` (BTree) representation they replaced, so every
//! decision downstream — taker choice, greedy tie-breaks, table builds —
//! is byte-identical to the previous layout.

use tao_util::det::DetSet;
use tao_util::footprint::Footprint;
use std::error::Error;
use std::fmt;

use tao_topology::NodeIdx;

use crate::point::Point;
use crate::scratch::RouteScratch;
use crate::zone::Zone;
use crate::zone_index::{IndexHit, ZoneIndex};

/// Identifies a node in an overlay. Dense per overlay; ids of departed
/// nodes are *not* reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OverlayNodeId(pub u32);

impl OverlayNodeId {
    /// The id as a `usize`, for slice addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OverlayNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o{}", self.0)
    }
}

/// Errors from overlay operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OverlayError {
    /// The node id does not exist or has departed.
    UnknownNode(OverlayNodeId),
    /// The point's dimensionality does not match the overlay's.
    DimensionMismatch {
        /// The overlay's dimensionality.
        expected: usize,
        /// The point's dimensionality.
        got: usize,
    },
    /// The last node cannot depart.
    LastNode,
    /// Greedy routing failed to make progress (should not happen on a
    /// consistent overlay; surfaced rather than looping forever).
    RoutingStuck {
        /// Node at which progress stopped.
        at: OverlayNodeId,
    },
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::UnknownNode(id) => write!(f, "unknown or departed overlay node {id}"),
            OverlayError::DimensionMismatch { expected, got } => {
                write!(f, "expected a {expected}-d point, got {got}-d")
            }
            OverlayError::LastNode => write!(f, "the last node cannot depart"),
            OverlayError::RoutingStuck { at } => {
                write!(f, "greedy routing made no progress at {at}")
            }
        }
    }
}

impl Error for OverlayError {}

/// The result of routing a message: the nodes visited, in order, starting
/// with the source and ending with the owner of the target point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Visited nodes, source first.
    pub hops: Vec<OverlayNodeId>,
}

impl Route {
    /// Number of overlay hops (edges traversed).
    pub fn hop_count(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }
}

/// Zone-tree node in the index-linked arena: either a leaf owned by an
/// overlay node or an internal split whose children are arena indices.
#[derive(Debug, Clone, Copy)]
enum ArenaNode {
    Leaf(OverlayNodeId),
    Split {
        axis: u32,
        mid: f64,
        lower: u32,
        upper: u32,
    },
}

/// A content-addressable network over `[0,1)^d`.
///
/// See the [crate documentation](crate) for an end-to-end example and the
/// [module documentation](self) for the struct-of-arrays storage layout.
#[derive(Debug, Clone)]
pub struct CanOverlay {
    dims: usize,
    /// Underlay router per node, indexed by id.
    underlay: Vec<NodeIdx>,
    /// Split-tree depth of the primary zone, indexed by id.
    depth: Vec<u32>,
    /// Liveness flag, indexed by id (departed ids are never reused).
    alive: Vec<bool>,
    /// CAN neighbors per node, each list sorted ascending by id (the same
    /// iteration order as the BTree sets this layout replaced).
    neighbors: Vec<Vec<OverlayNodeId>>,
    /// Primary-zone bounds, flat: node `i` occupies
    /// `bounds[i*2*dims .. (i+1)*2*dims]` as `lo[0..dims] ++ hi[0..dims]`.
    bounds: Vec<f64>,
    /// Zones taken over from departed neighbors (primary zone excluded);
    /// empty for almost every node.
    extra: Vec<Vec<Zone>>,
    /// Split-tree arena; `root` indexes into it once a node has joined.
    arena: Vec<ArenaNode>,
    root: Option<u32>,
    live_count: usize,
    /// Morton index over live zones, maintained incrementally on
    /// join/split/departure; serves aligned-cube `nodes_in` queries
    /// without walking the split tree.
    index: ZoneIndex,
}

impl CanOverlay {
    /// Creates an empty overlay of dimensionality `dims`.
    ///
    /// Returns `None` if `dims` is zero.
    pub fn new(dims: usize) -> Option<Self> {
        if dims == 0 {
            return None;
        }
        Some(CanOverlay {
            dims,
            underlay: Vec::new(),
            depth: Vec::new(),
            alive: Vec::new(),
            neighbors: Vec::new(),
            bounds: Vec::new(),
            extra: Vec::new(),
            arena: Vec::new(),
            root: None,
            live_count: 0,
            index: ZoneIndex::new(dims),
        })
    }

    /// Dimensionality of the Cartesian space.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// `true` if no node has joined (or all departed).
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// `true` if `id` was assigned and has not departed.
    // tao-lint: allow(panic-reachability, reason = "bounds-checked get with unwrap_or; the only panic edge is the approximate name-match on index()")
    pub fn is_live(&self, id: OverlayNodeId) -> bool {
        self.alive.get(id.index()).copied().unwrap_or(false)
    }

    /// One past the largest id ever assigned — the size dense per-id
    /// side tables must have to cover every node, live or departed.
    pub fn id_bound(&self) -> usize {
        self.underlay.len()
    }

    /// Ids of all live nodes.
    pub fn live_nodes(&self) -> impl Iterator<Item = OverlayNodeId> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| OverlayNodeId(i as u32))
    }

    /// Errs unless `id` was assigned and is still live.
    fn ensure_live(&self, id: OverlayNodeId) -> Result<(), OverlayError> {
        if self.is_live(id) {
            Ok(())
        } else {
            Err(OverlayError::UnknownNode(id))
        }
    }

    /// Lower bounds of node `i`'s primary zone, one entry per axis.
    fn primary_lo(&self, i: usize) -> &[f64] {
        let base = i * 2 * self.dims;
        // tao-lint: allow(arith-safety, reason = "dense SoA layout: i < id_bound and dims is fixed at construction, so base + dims <= bounds.len() by the arena invariant")
        &self.bounds[base..base + self.dims]
    }

    /// Upper bounds of node `i`'s primary zone, one entry per axis.
    fn primary_hi(&self, i: usize) -> &[f64] {
        let base = i * 2 * self.dims + self.dims;
        // tao-lint: allow(arith-safety, reason = "dense SoA layout: i < id_bound and dims is fixed at construction, so base + dims <= bounds.len() by the arena invariant")
        &self.bounds[base..base + self.dims]
    }

    /// Overwrites node `i`'s primary-zone bounds in the flat array.
    fn set_primary(&mut self, i: usize, z: &Zone) {
        let base = i * 2 * self.dims;
        for a in 0..self.dims {
            self.bounds[base + a] = z.lo(a);
            self.bounds[base + self.dims + a] = z.hi(a);
        }
    }

    /// Materializes node `i`'s primary zone from the flat bounds.
    fn primary_zone(&self, i: usize) -> Zone {
        Zone::from_slices(self.primary_lo(i), self.primary_hi(i))
    }

    /// Appends a node to every parallel array, returning its id.
    fn push_node(&mut self, underlay: NodeIdx, zone: &Zone) -> OverlayNodeId {
        let id = OverlayNodeId(self.underlay.len() as u32);
        self.underlay.push(underlay);
        self.depth.push(0);
        self.alive.push(true);
        self.neighbors.push(Vec::new());
        for a in 0..self.dims {
            self.bounds.push(zone.lo(a));
        }
        for a in 0..self.dims {
            self.bounds.push(zone.hi(a));
        }
        self.extra.push(Vec::new());
        id
    }

    /// `true` if node `i` owns `p` through any of its zones (primary
    /// first, then takeovers — the order the zones were acquired).
    pub(crate) fn node_owns_point(&self, i: usize, p: &Point) -> bool {
        if bounds_contain(self.primary_lo(i), self.primary_hi(i), p) {
            return true;
        }
        self.extra[i].iter().any(|z| z.contains(p))
    }

    /// `true` while no node has ever departed. Every takeover pushes the
    /// departed primary into the taker's extra-zone list and nothing ever
    /// removes one, so this is exactly "no extra zones exist anywhere" —
    /// the scratch routing fast paths use it to skip the per-node extra
    /// lists (a random memory touch per candidate) and read only the flat
    /// SoA bounds.
    pub(crate) fn is_pristine(&self) -> bool {
        self.live_count == self.underlay.len()
    }

    /// Distance from node `i`'s *primary* zone to `p` — identical to
    /// [`CanOverlay::node_distance`] when [`CanOverlay::is_pristine`].
    pub(crate) fn primary_distance(&self, i: usize, p: &Point) -> f64 {
        bounds_distance(self.primary_lo(i), self.primary_hi(i), p)
    }

    /// `true` if node `i`'s *primary* zone contains `p` — identical to
    /// [`CanOverlay::node_owns_point`] when [`CanOverlay::is_pristine`].
    pub(crate) fn primary_owns_point(&self, i: usize, p: &Point) -> bool {
        bounds_contain(self.primary_lo(i), self.primary_hi(i), p)
    }

    /// Minimum torus distance from any of node `i`'s zones to `p`.
    pub(crate) fn node_distance(&self, i: usize, p: &Point) -> f64 {
        let mut d = bounds_distance(self.primary_lo(i), self.primary_hi(i), p);
        for z in &self.extra[i] {
            d = d.min(z.distance_to_point(p));
        }
        d
    }

    /// Total volume of node `i`'s zones, summed primary-first (the same
    /// fold order as the zone-list representation this replaced).
    fn node_volume(&self, i: usize) -> f64 {
        let mut v = bounds_volume(self.primary_lo(i), self.primary_hi(i));
        for z in &self.extra[i] {
            v += z.volume();
        }
        v
    }

    /// `true` if any zone of node `i` is a CAN neighbor of any zone of
    /// node `j`.
    fn nodes_adjacent(&self, i: usize, j: usize) -> bool {
        let a_pairs = std::iter::once((self.primary_lo(i), self.primary_hi(i)))
            .chain(self.extra[i].iter().map(|z| (z.lo_slice(), z.hi_slice())));
        for (alo, ahi) in a_pairs {
            let b_pairs = std::iter::once((self.primary_lo(j), self.primary_hi(j)))
                .chain(self.extra[j].iter().map(|z| (z.lo_slice(), z.hi_slice())));
            for (blo, bhi) in b_pairs {
                if bounds_neighbor(alo, ahi, blo, bhi) {
                    return true;
                }
            }
        }
        false
    }

    /// The underlay router a live overlay node runs on.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never assigned.
    pub fn underlay(&self, id: OverlayNodeId) -> NodeIdx {
        self.underlay[id.index()]
    }

    /// The zone a live node owns (its primary zone, materialized from the
    /// flat bounds array).
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] if `id` is unknown or departed.
    pub fn zone(&self, id: OverlayNodeId) -> Result<Zone, OverlayError> {
        self.ensure_live(id)?;
        Ok(self.primary_zone(id.index()))
    }

    /// All zones a live node owns: the primary zone first, then any zones
    /// taken over from departed neighbors.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] if `id` is unknown or departed.
    pub fn zones(&self, id: OverlayNodeId) -> Result<Vec<Zone>, OverlayError> {
        self.ensure_live(id)?;
        let i = id.index();
        let mut out = Vec::with_capacity(1 + self.extra[i].len());
        out.push(self.primary_zone(i));
        out.extend(self.extra[i].iter().cloned());
        Ok(out)
    }

    /// `true` if any of `id`'s zones overlaps `query` (open overlap on
    /// every axis, matching [`Zone::intersects`]) — answered straight from
    /// the flat bounds, with no zone materialization.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] if `id` is unknown or departed.
    // tao-lint: allow(panic-reachability, reason = "the bounds kernel indexes lo/hi by axis < dims, equal for every node by construction; mismatch is a debug assertion")
    pub fn zone_intersects(&self, id: OverlayNodeId, query: &Zone) -> Result<bool, OverlayError> {
        self.ensure_live(id)?;
        let i = id.index();
        if bounds_intersect(self.primary_lo(i), self.primary_hi(i), query) {
            return Ok(true);
        }
        Ok(self.extra[i].iter().any(|z| z.intersects(query)))
    }

    /// Zone-tree depth of a live node's zone.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] if `id` is unknown or departed.
    pub fn depth(&self, id: OverlayNodeId) -> Result<u32, OverlayError> {
        self.ensure_live(id)?;
        Ok(self.depth[id.index()])
    }

    /// `true` if live node `id` owns `point` through any of its zones.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] if `id` is unknown or departed.
    pub fn owns_point(&self, id: OverlayNodeId, point: &Point) -> Result<bool, OverlayError> {
        self.ensure_live(id)?;
        Ok(self.node_owns_point(id.index(), point))
    }

    /// Minimum torus distance from any of `id`'s zones to `point` (0 when
    /// the node owns the point).
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] if `id` is unknown or departed.
    pub fn distance_to_point(&self, id: OverlayNodeId, point: &Point) -> Result<f64, OverlayError> {
        self.ensure_live(id)?;
        Ok(self.node_distance(id.index(), point))
    }

    /// The CAN neighbors of a live node, ascending by id.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] if `id` is unknown or departed.
    pub fn neighbors(&self, id: OverlayNodeId) -> Result<Vec<OverlayNodeId>, OverlayError> {
        self.ensure_live(id)?;
        Ok(self.neighbors[id.index()].clone())
    }

    /// Conservative churn footprint of a join landing on `point`: the
    /// zone boxes and ids of the point's current owner and of every
    /// current neighbor of that owner.  A join splits the owner's zone
    /// and rewrites the neighbor sets of exactly those nodes, so any
    /// other churn operation whose footprint touches this one must be
    /// ordered against the join ([`Footprint::conflicts`] treats
    /// abutting boxes as overlapping, which covers CAN adjacency).
    ///
    /// Returns [`Footprint::global`] when the overlay is empty or the
    /// point has the wrong dimensionality — bootstrap joins serialize
    /// against everything instead of panicking.
    // tao-lint: allow(panic-reachability, reason = "owner() is only called after the empty-overlay and dimensionality guards that are exactly its panic preconditions")
    pub fn join_footprint(&self, point: &Point) -> Footprint {
        if self.root.is_none() || point.dims() != self.dims {
            return Footprint::global();
        }
        self.footprint_around(self.owner(point))
    }

    /// Conservative churn footprint of a departure (or crash) of `id`:
    /// the zone boxes and ids of `id` and of every current neighbor.
    /// A departure hands `id`'s zones to a neighboring taker and
    /// rewrites the neighbor sets of exactly those nodes.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] if `id` is unknown or departed.
    // tao-lint: allow(panic-reachability, reason = "bounds slices are indexed by a live node id validated by ensure_live")
    pub fn depart_footprint(&self, id: OverlayNodeId) -> Result<Footprint, OverlayError> {
        self.ensure_live(id)?;
        Ok(self.footprint_around(id))
    }

    /// Folds `id`'s zones and ids plus those of all its neighbors into
    /// one footprint (the common core of join/depart footprints).
    fn footprint_around(&self, id: OverlayNodeId) -> Footprint {
        let mut fp = Footprint::new();
        self.fold_node_footprint(&mut fp, id);
        let nbs = self.neighbors.get(id.index()).map(Vec::as_slice).unwrap_or(&[]);
        for &nb in nbs {
            self.fold_node_footprint(&mut fp, nb);
        }
        fp
    }

    /// Adds one node's id, primary zone box, and extra zone boxes to `fp`.
    fn fold_node_footprint(&self, fp: &mut Footprint, id: OverlayNodeId) {
        let i = id.index();
        fp.add_id(i as u64);
        fp.add_box(self.primary_lo(i), self.primary_hi(i));
        for z in self.extra.get(i).into_iter().flatten() {
            fp.add_box(z.lo_slice(), z.hi_slice());
        }
    }

    /// The owner of `point`.
    ///
    /// # Panics
    ///
    /// Panics if the overlay is empty or the point has the wrong
    /// dimensionality.
    pub fn owner(&self, point: &Point) -> OverlayNodeId {
        assert_eq!(point.dims(), self.dims, "dimensionality mismatch");
        let mut at = self.root.expect("overlay is empty"); // tao-lint: allow(no-unwrap-in-lib, reason = "overlay is empty")
        loop {
            match self.arena[at as usize] {
                ArenaNode::Leaf(id) => return id,
                ArenaNode::Split { axis, mid, lower, upper } => {
                    at = if point.coord(axis as usize) < mid { lower } else { upper };
                }
            }
        }
    }

    /// All live nodes whose zones intersect `query` (positive volume).
    ///
    /// Aligned-cube queries (the only kind the eCAN expressway tables
    /// issue) are answered from the incremental Morton zone index — one
    /// contiguous range scan instead of a split-tree walk. Other query
    /// shapes fall back to [`CanOverlay::nodes_in_scan`].
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ.
    pub fn nodes_in(&self, query: &Zone) -> Vec<OverlayNodeId> {
        assert_eq!(query.dims(), self.dims, "dimensionality mismatch");
        if self.root.is_none() {
            return Vec::new();
        }
        match self.index.lookup(query) {
            Some(IndexHit::Members(mut out)) => {
                out.sort();
                out
            }
            // The cube sits strictly inside one zone; its centre names it.
            Some(IndexHit::Enclosed) => vec![self.owner(&query.center())],
            None => self.nodes_in_scan(query),
        }
    }

    /// Tree-walk implementation of [`CanOverlay::nodes_in`]: visits every
    /// split node whose region intersects `query`. Kept as the fallback
    /// for non-cube queries and as the benchmark "before" kernel.
    pub fn nodes_in_scan(&self, query: &Zone) -> Vec<OverlayNodeId> {
        assert_eq!(query.dims(), self.dims, "dimensionality mismatch");
        let mut out = Vec::new();
        if let Some(root) = self.root {
            let whole = Zone::whole(self.dims);
            self.collect_in(root, &whole, query, &mut out);
        }
        out.sort();
        out
    }

    /// Number of live nodes whose zones intersect `query`, without
    /// sorting them.
    pub fn count_in(&self, query: &Zone) -> usize {
        if self.root.is_none() {
            return 0;
        }
        match self.index.lookup(query) {
            Some(IndexHit::Members(out)) => out.len(),
            Some(IndexHit::Enclosed) => 1,
            None => self.nodes_in_scan(query).len(),
        }
    }

    /// A uniformly-random-ish live member of `query` (weighted by zone
    /// count, not volume), in O(depth) — usable where enumerating a huge
    /// high-order zone would be wasteful. Returns `None` on an empty
    /// overlay or when `query` intersects no zone (impossible for boxes of
    /// positive volume, since zones tile the space).
    ///
    /// # Panics
    ///
    /// Panics if dimensionalities differ.
    // tao-lint: allow(panic-reachability, reason = "documented panic on dimensionality mismatch; callers pass boxes derived from this overlay's own zones")
    pub fn sample_in(&self, query: &Zone, rng: &mut impl tao_util::rand::Rng) -> Option<OverlayNodeId> {
        assert_eq!(query.dims(), self.dims, "dimensionality mismatch");
        let root = self.root?;
        let whole = Zone::whole(self.dims);
        self.sample_node(root, &whole, query, rng)
    }

    fn sample_node(
        &self,
        node: u32,
        bounds: &Zone,
        query: &Zone,
        rng: &mut impl tao_util::rand::Rng,
    ) -> Option<OverlayNodeId> {
        if !bounds.intersects(query) {
            return None;
        }
        match self.arena[node as usize] {
            ArenaNode::Leaf(id) => Some(id),
            ArenaNode::Split { axis, lower, upper, .. } => {
                let (lz, uz) = bounds.split(axis as usize);
                let lo_ok = lz.intersects(query);
                let hi_ok = uz.intersects(query);
                match (lo_ok, hi_ok) {
                    (true, true) => {
                        if rng.gen_bool(0.5) {
                            self.sample_node(lower, &lz, query, rng)
                        } else {
                            self.sample_node(upper, &uz, query, rng)
                        }
                    }
                    (true, false) => self.sample_node(lower, &lz, query, rng),
                    (false, true) => self.sample_node(upper, &uz, query, rng),
                    (false, false) => None,
                }
            }
        }
    }

    fn collect_in(
        &self,
        node: u32,
        bounds: &Zone,
        query: &Zone,
        out: &mut Vec<OverlayNodeId>,
    ) {
        if !bounds.intersects(query) {
            return;
        }
        match self.arena[node as usize] {
            ArenaNode::Leaf(id) => out.push(id),
            ArenaNode::Split { axis, lower, upper, .. } => {
                let (lz, uz) = bounds.split(axis as usize);
                self.collect_in(lower, &lz, query, out);
                self.collect_in(upper, &uz, query, out);
            }
        }
    }

    /// Joins a node running on underlay router `underlay` at `point`,
    /// splitting the owner's zone. Returns the new node's id.
    ///
    /// # Panics
    ///
    /// Panics if the point has the wrong dimensionality.
    pub fn join(&mut self, underlay: NodeIdx, point: Point) -> OverlayNodeId {
        assert_eq!(point.dims(), self.dims, "dimensionality mismatch");
        if let Some(id) = self.bootstrap_join(underlay) {
            return id;
        }
        let owner = self.owner(&point);
        self.split_join(underlay, &point, owner)
    }

    /// Like [`CanOverlay::join`], but takes a pre-resolved `owner` hint —
    /// typically computed by a read-only prepare phase — and skips the
    /// owner search when the hint still owns `point`. A stale hint (the
    /// owner changed between lookup and join) falls back to a fresh
    /// search, so the resulting overlay state is identical to
    /// [`CanOverlay::join`] no matter how old the hint is.
    ///
    /// # Panics
    ///
    /// Panics if the point has the wrong dimensionality.
    // tao-lint: allow(panic-reachability, reason = "documented dimensionality panic; stale or dead hints degrade to the fresh owner search")
    pub fn join_with_owner(
        &mut self,
        underlay: NodeIdx,
        point: Point,
        owner: OverlayNodeId,
    ) -> OverlayNodeId {
        assert_eq!(point.dims(), self.dims, "dimensionality mismatch");
        if let Some(id) = self.bootstrap_join(underlay) {
            return id;
        }
        let owner = if self.owns_point(owner, &point).unwrap_or(false) {
            owner
        } else {
            self.owner(&point)
        };
        self.split_join(underlay, &point, owner)
    }

    /// Handles the empty-overlay join (first node owns the whole space);
    /// returns `None` when the overlay is already bootstrapped.
    fn bootstrap_join(&mut self, underlay: NodeIdx) -> Option<OverlayNodeId> {
        if self.root.is_some() {
            return None;
        }
        let whole = Zone::whole(self.dims);
        let new_id = self.push_node(underlay, &whole);
        self.arena.push(ArenaNode::Leaf(new_id));
        self.root = Some(0);
        self.live_count = 1;
        self.index.insert(&whole, new_id);
        Some(new_id)
    }

    /// Splits `owner`'s zone at `point` and installs the new node: the
    /// shared tail of [`CanOverlay::join`] and
    /// [`CanOverlay::join_with_owner`], after owner resolution.
    fn split_join(
        &mut self,
        underlay: NodeIdx,
        point: &Point,
        owner: OverlayNodeId,
    ) -> OverlayNodeId {
        let point = point.clone();
        // Split the specific zone that contains the join point (the owner
        // may hold extra zones taken over from departed neighbors): the
        // primary zone is checked first, matching the acquisition order.
        let oi = owner.index();
        let zone_idx = if bounds_contain(self.primary_lo(oi), self.primary_hi(oi), &point) {
            0
        } else {
            1 + self.extra[oi]
                .iter()
                .position(|z| z.contains(&point))
                .expect("owner's zones cover the join point") // tao-lint: allow(no-unwrap-in-lib, reason = "owner's zones cover the join point")
        };
        let owner_zone = if zone_idx == 0 {
            self.primary_zone(oi)
        } else {
            self.extra[oi][zone_idx - 1].clone()
        };
        // CAN splits in half along the widest axis (ties -> lowest axis),
        // which reproduces round-robin splitting on dyadic zones and stays
        // well-defined for taken-over zones.
        let axis = widest_axis(&owner_zone);
        let (lower, upper) = owner_zone.split(axis);
        // New node takes the half containing its join point.
        let (new_zone, old_zone) = if lower.contains(&point) {
            (lower, upper)
        } else {
            (upper, lower)
        };

        let new_id = self.push_node(underlay, &new_zone);
        self.live_count += 1;

        // Update the zone tree: replace the leaf at the join point with a
        // split over two freshly-allocated arena leaves.
        let mid = (owner_zone.lo(axis) + owner_zone.hi(axis)) / 2.0;
        let (lower_id, upper_id) = if new_zone.lo(axis) > old_zone.lo(axis) {
            (owner, new_id)
        } else {
            (new_id, owner)
        };
        let lower_leaf = self.arena.len() as u32;
        self.arena.push(ArenaNode::Leaf(lower_id));
        let upper_leaf = self.arena.len() as u32;
        self.arena.push(ArenaNode::Leaf(upper_id));
        let leaf_at = self.leaf_index_at(&point);
        self.arena[leaf_at as usize] = ArenaNode::Split {
            axis: axis as u32,
            mid,
            lower: lower_leaf,
            upper: upper_leaf,
        };

        // Update the zone index: the split zone is replaced by its halves.
        self.index.remove(&owner_zone);
        self.index.insert(&old_zone, owner);
        self.index.insert(&new_zone, new_id);

        // Update owner's zone and both depths.
        if zone_idx == 0 {
            self.set_primary(oi, &old_zone);
        } else {
            self.extra[oi][zone_idx - 1] = old_zone;
        }
        self.depth[oi] = bounds_split_depth(self.primary_lo(oi), self.primary_hi(oi));
        let ni = new_id.index();
        self.depth[ni] = bounds_split_depth(self.primary_lo(ni), self.primary_hi(ni));

        // Rebuild neighbor sets of the two halves from the owner's previous
        // neighborhood (plus each other).
        let mut candidates: Vec<OverlayNodeId> = self.neighbors[oi].clone();
        candidates.push(owner);
        candidates.push(new_id);
        // Drop all old links to `owner`; they are recomputed below.
        for &c in &candidates {
            link_remove(&mut self.neighbors[c.index()], owner);
        }
        self.neighbors[oi].clear();
        for &a in &[owner, new_id] {
            for &c in &candidates {
                if a == c {
                    continue;
                }
                if self.nodes_adjacent(a.index(), c.index()) {
                    link_insert(&mut self.neighbors[a.index()], c);
                    link_insert(&mut self.neighbors[c.index()], a);
                }
            }
        }
        new_id
    }

    /// Arena index of the leaf whose region contains `point` — O(depth).
    fn leaf_index_at(&self, point: &Point) -> u32 {
        let mut at = self.root.expect("tree is non-empty"); // tao-lint: allow(no-unwrap-in-lib, reason = "tree is non-empty")
        loop {
            match self.arena[at as usize] {
                ArenaNode::Leaf(_) => return at,
                ArenaNode::Split { axis, mid, lower, upper } => {
                    at = if point.coord(axis as usize) < mid { lower } else { upper };
                }
            }
        }
    }

    /// Departs a node. Its zone is taken over by the smallest-volume CAN
    /// neighbor (the departing node's state is retired; the taker's zone set
    /// is represented by re-rooting the leaf to the taker).
    ///
    /// The taker may end up owning a non-box region; for simplicity and
    /// faithfulness to zone accounting, the taker's `zone` field keeps its
    /// original box while the zone tree records the extra leaf, so owner
    /// lookup and routing stay exact.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] if `id` is unknown or departed,
    /// and [`OverlayError::LastNode`] if `id` is the only live node.
    pub fn leave(&mut self, id: OverlayNodeId) -> Result<(), OverlayError> {
        self.ensure_live(id)?;
        if self.live_count == 1 {
            return Err(OverlayError::LastNode);
        }
        let i = id.index();
        // Pick the smallest-volume neighbor as the taker.
        let taker = self.neighbors[i]
            .iter()
            .copied()
            .min_by(|a, b| {
                let va = self.node_volume(a.index());
                let vb = self.node_volume(b.index());
                va.total_cmp(&vb).then(a.cmp(b))
            })
            .expect("a live non-last node has at least one neighbor"); // tao-lint: allow(no-unwrap-in-lib, reason = "a live non-last node has at least one neighbor")

        // Re-point the departing node's leaf (or leaves, if it had taken
        // over zones itself) at the taker. The arena is flat, so this is a
        // linear relabel pass rather than a pointer-tree recursion.
        for n in &mut self.arena {
            if let ArenaNode::Leaf(leaf) = n {
                if *leaf == id {
                    *leaf = taker;
                }
            }
        }

        // The taker now owns all of the departing node's zones (primary
        // first, then its takeovers — the order the old zone list held).
        let primary = self.primary_zone(i);
        self.index.reassign(&primary, taker);
        let departed_extra = std::mem::take(&mut self.extra[i]);
        for z in &departed_extra {
            self.index.reassign(z, taker);
        }
        let ti = taker.index();
        self.extra[ti].push(primary);
        self.extra[ti].extend(departed_extra);

        // The taker inherits the departing node's neighbors.
        let old_neighbors = std::mem::take(&mut self.neighbors[i]);
        for &n in &old_neighbors {
            link_remove(&mut self.neighbors[n.index()], id);
        }
        for n in old_neighbors {
            if n == taker {
                continue;
            }
            // Conservative: the taker now owns the departed zone, so every
            // neighbor of that zone becomes a neighbor of the taker.
            link_insert(&mut self.neighbors[ti], n);
            link_insert(&mut self.neighbors[n.index()], taker);
        }
        self.alive[i] = false;
        self.live_count -= 1;
        Ok(())
    }

    /// Routes greedily from `source` toward the owner of `target` using only
    /// default CAN neighbors: each hop forwards to the neighbor whose zone is
    /// closest to the target point.
    ///
    /// # Errors
    ///
    /// Returns [`OverlayError::UnknownNode`] for a dead source,
    /// [`OverlayError::DimensionMismatch`] for a bad target, and
    /// [`OverlayError::RoutingStuck`] if greedy progress stalls.
    pub fn route(&self, source: OverlayNodeId, target: &Point) -> Result<Route, OverlayError> {
        if target.dims() != self.dims {
            return Err(OverlayError::DimensionMismatch {
                expected: self.dims,
                got: target.dims(),
            });
        }
        self.ensure_live(source)?;
        let mut hops = vec![source];
        let mut current = source;
        // Greedy with a visited set: strictly-decreasing progress can fail
        // at zone corners, so permit sideways moves but never revisit.
        let mut visited: DetSet<OverlayNodeId> = DetSet::new();
        visited.insert(source);
        // Bound on *live* nodes, not arena slots: a route can only visit
        // live nodes, so dead slots left behind by churn must not inflate
        // how long a stuck route is allowed to wander.
        let limit = 4 * self.live_count + 16;
        while !self.node_owns_point(current.index(), target) {
            if hops.len() > limit {
                return Err(OverlayError::RoutingStuck { at: current });
            }
            let next = self.neighbors[current.index()]
                .iter()
                .copied()
                .filter(|n| !visited.contains(n))
                .min_by(|a, b| {
                    let da = self.node_distance(a.index(), target);
                    let db = self.node_distance(b.index(), target);
                    da.total_cmp(&db).then(a.cmp(b))
                })
                .ok_or(OverlayError::RoutingStuck { at: current })?;
            visited.insert(next);
            hops.push(next);
            current = next;
        }
        Ok(Route { hops })
    }

    /// Node `i`'s sorted neighbor list, without the liveness check or the
    /// clone of the public [`CanOverlay::neighbors`] accessor.
    pub(crate) fn neighbor_slice(&self, i: usize) -> &[OverlayNodeId] {
        &self.neighbors[i]
    }

    /// Allocation-free variant of [`CanOverlay::route`]: same checks, same
    /// hop sequence, same errors, but the visited set and hop buffer live
    /// in `scratch` and are reused across calls. On success the hop
    /// sequence (source first) is in [`RouteScratch::hops`]; on error the
    /// scratch is still reusable.
    // tao-lint: hot
    // tao-lint: allow(panic-reachability, reason = "scratch stamps are sized by begin_can(id_bound()) before any mark; the greedy tail indexes bounds by live ids validated by ensure_live")
    pub fn route_into(
        &self,
        scratch: &mut RouteScratch,
        source: OverlayNodeId,
        target: &Point,
    ) -> Result<(), OverlayError> {
        if target.dims() != self.dims {
            return Err(OverlayError::DimensionMismatch {
                expected: self.dims,
                got: target.dims(),
            });
        }
        self.ensure_live(source)?;
        scratch.begin_can(self.id_bound());
        scratch.push_hop(source);
        self.route_append(scratch, source, target)
    }

    /// Routes greedily from `start` (assumed live) toward the owner of
    /// `target`, appending hops after `start` to `scratch.hops` under a
    /// *fresh* visited generation — exactly the hop sequence the allocating
    /// [`CanOverlay::route`] would produce after its own `vec![start]`.
    ///
    /// Shared by [`CanOverlay::route_into`] and the eCAN stuck-fallback,
    /// which splices this tail onto an express prefix (the oracle there
    /// calls `can.route(...)` with a fresh `DetSet`, hence the fresh
    /// generation here).
    pub(crate) fn route_append(
        &self,
        scratch: &mut RouteScratch,
        start: OverlayNodeId,
        target: &Point,
    ) -> Result<(), OverlayError> {
        scratch.refresh_visited(self.id_bound());
        scratch.mark(start.index());
        let mut current = start;
        // Mirrors the length of the oracle's per-call `hops` Vec, which in
        // the eCAN fallback restarts at 1 regardless of the prefix.
        let mut seg_len = 1usize;
        let limit = 4 * self.live_count + 16;
        // Extra zones exist iff some node has departed (every takeover
        // pushes exactly one primary into the taker's extras and nothing
        // ever removes one), so a pristine overlay can skip the per-node
        // extra-zone lists — an entire random memory touch per candidate —
        // and read only the flat SoA bounds. The primary-only arithmetic
        // is `node_distance`'s own first step, so the values are identical.
        let pristine = self.is_pristine();
        while !(if pristine {
            self.primary_owns_point(current.index(), target)
        } else {
            self.node_owns_point(current.index(), target)
        }) {
            if seg_len > limit {
                return Err(OverlayError::RoutingStuck { at: current });
            }
            // Single pass over the SoA bounds: each candidate's distance is
            // computed once, vs twice per comparison under `min_by`.
            // Neighbor lists are sorted by id and only a *strictly* smaller
            // distance (total_cmp) displaces the incumbent, which is the
            // first-of-equal-minima / then-id-tie-break rule of the oracle.
            let mut best: Option<(f64, OverlayNodeId)> = None;
            for &n in &self.neighbors[current.index()] {
                if scratch.is_marked(n.index()) {
                    continue;
                }
                let d = if pristine {
                    self.primary_distance(n.index(), target)
                } else {
                    self.node_distance(n.index(), target)
                };
                if !matches!(&best, Some((bd, _)) if bd.total_cmp(&d) != std::cmp::Ordering::Greater)
                {
                    best = Some((d, n));
                }
            }
            let (_, next) = best.ok_or(OverlayError::RoutingStuck { at: current })?;
            scratch.mark(next.index());
            scratch.push_hop(next);
            seg_len += 1;
            current = next;
        }
        Ok(())
    }

    /// Verifies structural invariants; used by tests and debug assertions.
    ///
    /// Checks that live zones tile the space (volumes sum to 1), that
    /// neighbor sets are symmetric and match geometric adjacency.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        if self.is_empty() {
            return;
        }
        let total: f64 = self
            .live_nodes()
            .map(|id| self.node_volume(id.index()))
            .sum();
        // Splits move volume and takeovers transfer whole zones, so live
        // zones always tile the space exactly (up to fp accumulation).
        assert!(
            (total - 1.0).abs() <= 1e-6,
            "zone volumes must tile the space: {total}"
        );
        for a in self.live_nodes() {
            for &b in &self.neighbors[a.index()] {
                assert!(
                    self.alive[b.index()],
                    "{a} links to departed node {b}"
                );
                assert!(
                    self.neighbors[b.index()].binary_search(&a).is_ok(),
                    "neighbor link {a}->{b} is not symmetric"
                );
            }
        }
    }
}

/// Inserts `id` into a sorted neighbor list if absent.
fn link_insert(v: &mut Vec<OverlayNodeId>, id: OverlayNodeId) {
    if let Err(pos) = v.binary_search(&id) {
        v.insert(pos, id);
    }
}

/// Removes `id` from a sorted neighbor list if present.
fn link_remove(v: &mut Vec<OverlayNodeId>, id: OverlayNodeId) {
    if let Ok(pos) = v.binary_search(&id) {
        v.remove(pos);
    }
}

/// `Zone::contains` over raw bound slices (identical arithmetic).
fn bounds_contain(lo: &[f64], hi: &[f64], p: &Point) -> bool {
    assert_eq!(p.dims(), lo.len(), "dimensionality mismatch");
    (0..lo.len()).all(|a| lo[a] <= p.coord(a) && p.coord(a) < hi[a])
}

/// `Zone::volume` over raw bound slices (identical arithmetic).
fn bounds_volume(lo: &[f64], hi: &[f64]) -> f64 {
    (0..lo.len()).map(|a| hi[a] - lo[a]).product()
}

/// `Zone::distance_to_point` over raw bound slices — the greedy routing
/// metric, kept arithmetic-for-arithmetic identical so routes (and the
/// replay fingerprints built on them) match the zone-list layout exactly.
fn bounds_distance(lo: &[f64], hi: &[f64], p: &Point) -> f64 {
    assert_eq!(p.dims(), lo.len(), "dimensionality mismatch");
    let mut sum = 0.0;
    for a in 0..lo.len() {
        let c = p.coord(a);
        if lo[a] <= c && c < hi[a] {
            continue;
        }
        // Direct gaps on either side, and wrapped gaps around the torus.
        let below = (lo[a] - c).max(0.0);
        let above = (c - hi[a]).max(0.0);
        let direct = below.max(above);
        let wrap_low = 1.0 - c + lo[a]; // going up past 1.0 to reach lo
        let wrap_high = 1.0 - hi[a] + c; // zone's top wrapping to reach c
        let d = direct.min(wrap_low).min(wrap_high);
        sum += d * d;
    }
    sum.sqrt()
}

/// `Zone::intersects` over raw bound slices: positive-length overlap on
/// every axis.
fn bounds_intersect(lo: &[f64], hi: &[f64], query: &Zone) -> bool {
    debug_assert_eq!(lo.len(), query.dims(), "dimensionality mismatch");
    (0..lo.len()).all(|a| lo[a] < query.hi(a) && query.lo(a) < hi[a])
}

/// `Zone::is_neighbor` over raw bound slices: the boxes abut along exactly
/// one axis (including across the torus seam) and overlap along all others.
fn bounds_neighbor(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> bool {
    debug_assert_eq!(alo.len(), blo.len(), "dimensionality mismatch");
    let mut abutting = 0;
    for a in 0..alo.len() {
        if alo[a] < bhi[a] && blo[a] < ahi[a] {
            continue; // overlap of positive length on this axis
        }
        let abuts = ahi[a] == blo[a]
            || bhi[a] == alo[a]
            || (ahi[a] == 1.0 && blo[a] == 0.0)
            || (bhi[a] == 1.0 && alo[a] == 0.0);
        if abuts {
            abutting += 1;
            if abutting > 1 {
                return false;
            }
        } else {
            return false;
        }
    }
    abutting == 1
}

/// Number of binary splits that produced the box from the whole space:
/// the sum over axes of log2(1/extent), over raw bound slices.
fn bounds_split_depth(lo: &[f64], hi: &[f64]) -> u32 {
    (0..lo.len())
        .map(|a| (-(hi[a] - lo[a]).log2()).round() as u32)
        .sum()
}

/// The axis along which `zone` is widest (ties break to the lowest axis) —
/// the CAN split axis.
fn widest_axis(zone: &Zone) -> usize {
    (0..zone.dims())
        .max_by(|&a, &b| {
            zone.extent(a)
                .partial_cmp(&zone.extent(b))
                .expect("extents are finite") // tao-lint: allow(no-unwrap-in-lib, reason = "extents are finite")
                .then(b.cmp(&a)) // prefer the lower axis on ties
        })
        .expect("zones have at least one axis") // tao-lint: allow(no-unwrap-in-lib, reason = "zones have at least one axis")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_util::rand::rngs::StdRng;
    use tao_util::rand::{Rng, SeedableRng};

    fn grown_overlay(n: usize, seed: u64) -> CanOverlay {
        let mut can = CanOverlay::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            can.join(NodeIdx(i as u32), Point::random(2, &mut rng));
        }
        can
    }

    #[test]
    fn bootstrap_owns_everything() {
        let mut can = CanOverlay::new(2).unwrap();
        let a = can.join(NodeIdx(0), Point::new(vec![0.3, 0.3]).unwrap());
        assert_eq!(can.len(), 1);
        assert_eq!(can.owner(&Point::new(vec![0.9, 0.9]).unwrap()), a);
        assert_eq!(can.zone(a).unwrap(), Zone::whole(2));
    }

    #[test]
    fn join_splits_the_owners_zone() {
        let mut can = CanOverlay::new(2).unwrap();
        let a = can.join(NodeIdx(0), Point::new(vec![0.3, 0.3]).unwrap());
        let b = can.join(NodeIdx(1), Point::new(vec![0.9, 0.9]).unwrap());
        // First split is along axis 0; b's point is in the upper half.
        assert_eq!(can.zone(b).unwrap().lo(0), 0.5);
        assert_eq!(can.zone(a).unwrap().hi(0), 0.5);
        assert_eq!(can.neighbors(a).unwrap(), vec![b]);
        assert_eq!(can.neighbors(b).unwrap(), vec![a]);
        can.check_invariants();
    }

    #[test]
    fn zones_tile_the_space() {
        let can = grown_overlay(64, 7);
        let total: f64 = can
            .live_nodes()
            .map(|id| can.zone(id).unwrap().volume())
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "zones must tile: {total}");
        can.check_invariants();
    }

    #[test]
    fn owner_lookup_agrees_with_zone_containment() {
        let can = grown_overlay(50, 3);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let p = Point::random(2, &mut rng);
            let owner = can.owner(&p);
            assert!(can.zone(owner).unwrap().contains(&p));
        }
    }

    #[test]
    fn neighbor_sets_match_geometry() {
        let can = grown_overlay(40, 9);
        let live: Vec<OverlayNodeId> = can.live_nodes().collect();
        for &a in &live {
            for &b in &live {
                if a == b {
                    continue;
                }
                let geometric = can
                    .zone(a)
                    .unwrap()
                    .is_neighbor(&can.zone(b).unwrap());
                let listed = can.neighbors(a).unwrap().contains(&b);
                assert_eq!(
                    geometric, listed,
                    "adjacency mismatch between {a} and {b}"
                );
            }
        }
    }

    #[test]
    fn routing_reaches_the_owner() {
        let can = grown_overlay(100, 5);
        let mut rng = StdRng::seed_from_u64(13);
        let live: Vec<OverlayNodeId> = can.live_nodes().collect();
        for _ in 0..100 {
            let src = live[rng.gen_range(0..live.len())];
            let target = Point::random(2, &mut rng);
            let route = can.route(src, &target).unwrap();
            assert_eq!(route.hops[0], src);
            assert_eq!(*route.hops.last().unwrap(), can.owner(&target));
        }
    }

    #[test]
    fn routing_hops_scale_like_sqrt_n_in_2d() {
        let can = grown_overlay(256, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let live: Vec<OverlayNodeId> = can.live_nodes().collect();
        let mut total = 0usize;
        const ROUTES: usize = 200;
        for _ in 0..ROUTES {
            let src = live[rng.gen_range(0..live.len())];
            let target = Point::random(2, &mut rng);
            total += can.route(src, &target).unwrap().hop_count();
        }
        let avg = total as f64 / ROUTES as f64;
        // Theory: (d/4) * n^(1/d) = 8 for n=256, d=2. Allow generous slack.
        assert!(avg > 2.0 && avg < 20.0, "avg hops {avg} looks wrong");
    }

    #[test]
    fn departure_hands_zone_to_a_neighbor() {
        let mut can = grown_overlay(20, 21);
        let victim = OverlayNodeId(7);
        let victim_zone = can.zone(victim).unwrap();
        let probe = victim_zone.center();
        can.leave(victim).unwrap();
        assert_eq!(can.len(), 19);
        let new_owner = can.owner(&probe);
        assert_ne!(new_owner, victim);
        assert!(can.zone(new_owner).is_ok());
        assert!(can.zone(victim).is_err());
        can.check_invariants();
    }

    #[test]
    fn routing_still_works_after_churn() {
        let mut can = grown_overlay(60, 17);
        let mut rng = StdRng::seed_from_u64(3);
        for id in [3u32, 14, 25, 36, 47] {
            can.leave(OverlayNodeId(id)).unwrap();
        }
        let live: Vec<OverlayNodeId> = can.live_nodes().collect();
        for _ in 0..100 {
            let src = live[rng.gen_range(0..live.len())];
            let target = Point::random(2, &mut rng);
            let route = can.route(src, &target).unwrap();
            assert_eq!(*route.hops.last().unwrap(), can.owner(&target));
        }
    }

    #[test]
    fn last_node_cannot_leave() {
        let mut can = CanOverlay::new(2).unwrap();
        let a = can.join(NodeIdx(0), Point::new(vec![0.5, 0.5]).unwrap());
        assert_eq!(can.leave(a), Err(OverlayError::LastNode));
    }

    #[test]
    fn is_live_tracks_membership() {
        let mut can = grown_overlay(8, 23);
        assert!(can.is_live(OverlayNodeId(3)));
        assert!(!can.is_live(OverlayNodeId(99)));
        can.leave(OverlayNodeId(3)).unwrap();
        assert!(!can.is_live(OverlayNodeId(3)));
        assert!(can.is_live(OverlayNodeId(4)));
    }

    #[test]
    fn nodes_in_returns_intersecting_zones() {
        let can = grown_overlay(32, 8);
        let (left, _) = Zone::whole(2).split(0);
        let inside = can.nodes_in(&left);
        assert!(!inside.is_empty());
        for id in inside {
            assert!(can.zone(id).unwrap().intersects(&left));
        }
        // Whole space returns everyone.
        assert_eq!(can.nodes_in(&Zone::whole(2)).len(), 32);
    }

    #[test]
    fn sample_in_returns_members_of_the_query_box() {
        let can = grown_overlay(64, 12);
        let (left, _) = Zone::whole(2).split(0);
        let members = can.nodes_in(&left);
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..100 {
            let s = can.sample_in(&left, &mut rng).expect("left half is populated");
            assert!(members.contains(&s), "{s} is not a member of the box");
        }
        assert_eq!(can.count_in(&Zone::whole(2)), 64);
    }

    #[test]
    fn sample_in_covers_more_than_one_member() {
        let can = grown_overlay(64, 15);
        let (left, _) = Zone::whole(2).split(0);
        let mut rng = StdRng::seed_from_u64(16);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(can.sample_in(&left, &mut rng).expect("populated"));
        }
        assert!(seen.len() > 3, "sampling should reach many members, got {}", seen.len());
    }

    #[test]
    fn indexed_nodes_in_matches_tree_walk() {
        // The Morton index must reproduce the tree walk byte-for-byte on
        // aligned cubes — including duplicate ids after takeovers — at
        // every dimensionality the experiments use.
        for d in 2..=5usize {
            let mut can = CanOverlay::new(d).unwrap();
            let mut rng = StdRng::seed_from_u64(31 + d as u64);
            for i in 0..128 {
                can.join(NodeIdx(i), Point::random(d, &mut rng));
            }
            // Churn so takers own several zones (duplicates in nodes_in).
            for id in [5u32, 17, 40, 77, 99] {
                can.leave(OverlayNodeId(id)).unwrap();
            }
            for level in 0..=4u32 {
                let side = 0.5f64.powi(level as i32);
                let cells = 1u32 << level;
                for _ in 0..20 {
                    let lo: Vec<f64> = (0..d)
                        .map(|_| rng.gen_range(0..cells) as f64 * side)
                        .collect();
                    let hi: Vec<f64> = lo.iter().map(|l| l + side).collect();
                    let cube = Zone::from_bounds(lo, hi).unwrap();
                    assert_eq!(
                        can.nodes_in(&cube),
                        can.nodes_in_scan(&cube),
                        "index/scan divergence at d={d} level={level}"
                    );
                    assert_eq!(can.count_in(&cube), can.nodes_in_scan(&cube).len());
                }
            }
        }
    }

    #[test]
    fn enclosed_cube_resolves_to_the_surrounding_zone_owner() {
        let mut can = CanOverlay::new(2).unwrap();
        can.join(NodeIdx(0), Point::new(vec![0.1, 0.1]).unwrap());
        // A deep cube strictly inside the single whole-space zone.
        let cube = Zone::from_bounds(vec![0.25, 0.25], vec![0.375, 0.375]).unwrap();
        assert_eq!(can.nodes_in(&cube), vec![OverlayNodeId(0)]);
        assert_eq!(can.count_in(&cube), 1);
    }

    #[test]
    fn errors_display_cleanly() {
        assert_eq!(
            OverlayError::UnknownNode(OverlayNodeId(5)).to_string(),
            "unknown or departed overlay node o5"
        );
        assert!(OverlayError::DimensionMismatch { expected: 2, got: 3 }
            .to_string()
            .contains("2-d"));
    }

    #[test]
    fn bounds_kernels_match_zone_methods() {
        // The slice kernels must agree with the Zone methods they mirror —
        // bit-for-bit, since routes compare distances with total_cmp.
        let mut rng = StdRng::seed_from_u64(29);
        for d in 2..=4usize {
            let mut can = CanOverlay::new(d).unwrap();
            for i in 0..64 {
                can.join(NodeIdx(i), Point::random(d, &mut rng));
            }
            for id in [2u32, 9, 33] {
                can.leave(OverlayNodeId(id)).unwrap();
            }
            let live: Vec<OverlayNodeId> = can.live_nodes().collect();
            for _ in 0..50 {
                let p = Point::random(d, &mut rng);
                for &id in &live {
                    let zones = can.zones(id).unwrap();
                    let want_d = zones
                        .iter()
                        .map(|z| z.distance_to_point(&p))
                        .fold(f64::INFINITY, f64::min);
                    let want_own = zones.iter().any(|z| z.contains(&p));
                    assert_eq!(can.distance_to_point(id, &p).unwrap().to_bits(), want_d.to_bits());
                    assert_eq!(can.owns_point(id, &p).unwrap(), want_own);
                }
            }
            for &a in &live {
                for &b in &live {
                    if a == b {
                        continue;
                    }
                    let za = can.zones(a).unwrap();
                    let zb = can.zones(b).unwrap();
                    let want = za.iter().any(|x| zb.iter().any(|y| x.is_neighbor(y)));
                    assert_eq!(can.nodes_adjacent(a.index(), b.index()), want);
                }
            }
        }
    }

    #[test]
    fn higher_dimensional_overlays_work() {
        for d in 3..=5 {
            let mut can = CanOverlay::new(d).unwrap();
            let mut rng = StdRng::seed_from_u64(d as u64);
            for i in 0..32 {
                can.join(NodeIdx(i), Point::random(d, &mut rng));
            }
            can.check_invariants();
            let total: f64 = can
                .live_nodes()
                .map(|id| can.zone(id).unwrap().volume())
                .sum();
            assert!((total - 1.0).abs() < 1e-9);
            let live: Vec<OverlayNodeId> = can.live_nodes().collect();
            let route = can.route(live[0], &Point::random(d, &mut rng)).unwrap();
            assert!(route.hop_count() < 32);
        }
    }
}
