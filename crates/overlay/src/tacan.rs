//! Topologically-Aware CAN — the *geographic layout* baseline.
//!
//! Ratnasamy et al.'s binning scheme constrains the overlay structure by the
//! physical topology: each node computes its landmark *ordering* (the
//! permutation of landmarks by increasing RTT) and joins CAN at a point
//! inside the region of the Cartesian space assigned to that ordering, so
//! physically close nodes own adjacent zones.
//!
//! The paper's §1 criticises exactly this: because orderings are wildly
//! non-uniform, "10% of the nodes can occupy 80–98% of the entire Cartesian
//! space, and some nodes have to maintain 10s–100s of neighbors". This
//! module reproduces the layout and provides [`ImbalanceStats`] to quantify
//! the claim.

use tao_util::rand::Rng;

use crate::can::{CanOverlay, OverlayError, OverlayNodeId, Route};
use crate::point::Point;
use tao_topology::NodeIdx;

/// Maps a landmark ordering (a permutation of `0..m`) to its lexicographic
/// rank via the Lehmer code, returning `(rank, m!)`.
///
/// # Panics
///
/// Panics if `ordering` is not a permutation of `0..ordering.len()` or is
/// empty or longer than 20 (20! overflows u64).
///
/// # Example
///
/// ```
/// use tao_overlay::tacan::ordering_rank;
///
/// assert_eq!(ordering_rank(&[0, 1, 2]), (0, 6));
/// assert_eq!(ordering_rank(&[2, 1, 0]), (5, 6));
/// ```
pub fn ordering_rank(ordering: &[usize]) -> (u64, u64) {
    let m = ordering.len();
    assert!((1..=20).contains(&m), "ordering length must be in 1..=20");
    let mut seen = vec![false; m];
    for &x in ordering {
        assert!(x < m, "ordering contains out-of-range element {x}");
        assert!(!seen[x], "ordering repeats element {x}");
        seen[x] = true;
    }
    let factorial = |k: u64| -> u64 { (1..=k).product::<u64>().max(1) };
    let mut rank: u64 = 0;
    for (i, &x) in ordering.iter().enumerate() {
        let smaller_remaining = ordering[i + 1..].iter().filter(|&&y| y < x).count() as u64;
        rank += smaller_remaining * factorial((m - 1 - i) as u64);
    }
    (rank, factorial(m as u64))
}

/// The join point Topologically-Aware CAN assigns to a node with the given
/// landmark ordering: the first axis is partitioned into `m!` equal bins by
/// ordering rank; the point is uniform within the bin and on all other axes.
///
/// # Panics
///
/// Panics under the same conditions as [`ordering_rank`], or if `dims` is 0.
pub fn binned_join_point(ordering: &[usize], dims: usize, rng: &mut impl Rng) -> Point {
    assert!(dims > 0, "need at least one dimension");
    let (rank, total) = ordering_rank(ordering);
    let bin_width = 1.0 / total as f64;
    let mut coords = vec![0.0; dims];
    coords[0] = (rank as f64 + rng.gen_range(0.0..1.0)) * bin_width;
    for c in coords.iter_mut().skip(1) {
        *c = rng.gen_range(0.0..1.0);
    }
    Point::clamped(coords)
}

/// A Topologically-Aware CAN: a [`CanOverlay`] whose nodes join at
/// landmark-binned points, so physically close nodes own adjacent zones.
///
/// This is the paper's §1 baseline made concrete as an overlay type, so the
/// churn/fault harness can exercise it alongside CAN, eCAN, Pastry, and
/// Chord via the same `check_invariants` pattern.
///
/// # Example
///
/// ```
/// use tao_overlay::tacan::TaCanOverlay;
/// use tao_topology::NodeIdx;
/// use tao_util::rand::SeedableRng;
///
/// let mut rng = tao_util::rand::rngs::StdRng::seed_from_u64(2);
/// let mut tacan = TaCanOverlay::new(2, 3).unwrap();
/// for i in 0..16u32 {
///     let ordering = if i % 2 == 0 { [0, 1, 2] } else { [1, 0, 2] };
///     tacan.join(NodeIdx(i), &ordering, &mut rng);
/// }
/// tacan.check_invariants();
/// assert_eq!(tacan.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct TaCanOverlay {
    can: CanOverlay,
    landmarks: usize,
}

impl TaCanOverlay {
    /// Creates an empty `dims`-dimensional overlay whose joins are binned by
    /// orderings of `landmarks` landmarks. Returns `None` when `dims` is 0
    /// or `landmarks` is outside `1..=20` (20! overflows the bin rank).
    pub fn new(dims: usize, landmarks: usize) -> Option<Self> {
        if !(1..=20).contains(&landmarks) {
            return None;
        }
        Some(TaCanOverlay {
            can: CanOverlay::new(dims)?,
            landmarks,
        })
    }

    /// The underlying CAN.
    pub fn can(&self) -> &CanOverlay {
        &self.can
    }

    /// Number of landmarks whose orderings partition the first axis.
    pub fn landmarks(&self) -> usize {
        self.landmarks
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.can.len()
    }

    /// `true` when no node is live.
    pub fn is_empty(&self) -> bool {
        self.can.is_empty()
    }

    /// Joins a node at the binned point its landmark `ordering` dictates;
    /// the residual position inside the bin is drawn from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `ordering` is not a permutation of `0..landmarks`.
    pub fn join(
        &mut self,
        underlay: NodeIdx,
        ordering: &[usize],
        rng: &mut impl Rng,
    ) -> OverlayNodeId {
        assert_eq!(
            ordering.len(),
            self.landmarks,
            "ordering must rank all {} landmarks",
            self.landmarks
        );
        let point = binned_join_point(ordering, self.can.dims(), rng);
        self.can.join(underlay, point)
    }

    /// Departs a node; its zones fall to a CAN takeover.
    ///
    /// # Errors
    ///
    /// Propagates [`OverlayError`] from [`CanOverlay::leave`].
    pub fn leave(&mut self, id: OverlayNodeId) -> Result<(), OverlayError> {
        self.can.leave(id)
    }

    /// Greedy CAN routing from `source` to the owner of `target`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CanOverlay::route`].
    pub fn route(&self, source: OverlayNodeId, target: &Point) -> Result<Route, OverlayError> {
        self.can.route(source, target)
    }

    /// Allocation-free variant of [`TaCanOverlay::route`]; see
    /// [`CanOverlay::route_into`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`CanOverlay::route`].
    // tao-lint: hot
    // tao-lint: allow(panic-reachability, reason = "delegates to CanOverlay::route_into, whose panic edges are guarded by its own scratch sizing and liveness checks")
    pub fn route_into(
        &self,
        scratch: &mut crate::RouteScratch,
        source: OverlayNodeId,
        target: &Point,
    ) -> Result<(), OverlayError> {
        self.can.route_into(scratch, source, target)
    }

    /// Imbalance statistics over the current membership — the quantities
    /// behind the paper's §1 claim.
    ///
    /// # Panics
    ///
    /// Panics if the overlay is empty.
    pub fn imbalance(&self) -> ImbalanceStats {
        ImbalanceStats::measure(&self.can)
    }

    /// Asserts the overlay's structural invariants, panicking with a
    /// description on the first violation: the underlying CAN's zone
    /// tiling and neighbor symmetry, plus an explicit end-to-end tiling
    /// re-check (every live node's zones sum to the whole space), since
    /// the skewed zones this layout produces are where tiling bugs would
    /// surface first.
    pub fn check_invariants(&self) {
        self.can.check_invariants();
        if self.can.is_empty() {
            return;
        }
        let total: f64 = self
            .can
            .live_nodes()
            .map(|id| {
                self.can
                    .zones(id)
                    .expect("live node") // tao-lint: allow(no-unwrap-in-lib, reason = "live node")
                    .iter()
                    .map(crate::zone::Zone::volume)
                    .sum::<f64>()
            })
            .sum();
        assert!(
            (total - 1.0).abs() <= 1e-6,
            "ta-can zones must tile the space: {total}"
        );
    }
}

/// Zone-size and neighbor-count imbalance statistics for an overlay —
/// the quantities behind the paper's §1 claim.
#[derive(Debug, Clone, PartialEq)]
pub struct ImbalanceStats {
    volumes: Vec<f64>,
    neighbor_counts: Vec<usize>,
}

impl ImbalanceStats {
    /// Computes the statistics over all live nodes of `can`.
    ///
    /// # Panics
    ///
    /// Panics if the overlay is empty.
    pub fn measure(can: &CanOverlay) -> Self {
        assert!(!can.is_empty(), "overlay has no live nodes");
        let mut volumes = Vec::with_capacity(can.len());
        let mut neighbor_counts = Vec::with_capacity(can.len());
        for id in can.live_nodes() {
            volumes.push(can.zone(id).expect("live node").volume()); // tao-lint: allow(no-unwrap-in-lib, reason = "live node")
            neighbor_counts.push(can.neighbors(id).expect("live node").len()); // tao-lint: allow(no-unwrap-in-lib, reason = "live node")
        }
        volumes.sort_by(|a, b| b.total_cmp(a));
        neighbor_counts.sort_unstable_by(|a, b| b.cmp(a));
        ImbalanceStats {
            volumes,
            neighbor_counts,
        }
    }

    /// Fraction of the total space owned by the largest `fraction` of nodes
    /// (e.g. `0.10` → the paper's "10% of nodes own …").
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` is in `(0, 1]`.
    pub fn top_share(&self, fraction: f64) -> f64 {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let k = ((self.volumes.len() as f64 * fraction).ceil() as usize).max(1);
        let total: f64 = self.volumes.iter().sum();
        self.volumes.iter().take(k).sum::<f64>() / total
    }

    /// The largest neighbor count of any node, or 0 with no nodes.
    pub fn max_neighbors(&self) -> usize {
        self.neighbor_counts.first().copied().unwrap_or(0)
    }

    /// Mean neighbor count.
    pub fn mean_neighbors(&self) -> f64 {
        self.neighbor_counts.iter().sum::<usize>() as f64 / self.neighbor_counts.len() as f64
    }

    /// Ratio of the largest zone volume to the smallest, or 1.0 with no
    /// nodes (an empty membership is vacuously balanced).
    pub fn volume_spread(&self) -> f64 {
        match (self.volumes.first(), self.volumes.last()) {
            (Some(&largest), Some(&smallest)) => largest / smallest,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_util::rand::rngs::StdRng;
    use tao_util::rand::SeedableRng;
    use tao_topology::NodeIdx;

    #[test]
    fn ranks_cover_all_permutations() {
        // All 3! = 6 orderings get distinct ranks 0..6.
        let perms: [[usize; 3]; 6] = [
            [0, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ];
        let mut ranks: Vec<u64> = perms.iter().map(|p| ordering_rank(p).0).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "repeats")]
    fn duplicate_elements_panic() {
        let _ = ordering_rank(&[0, 0, 1]);
    }

    #[test]
    fn binned_points_land_in_their_bins() {
        let mut rng = StdRng::seed_from_u64(5);
        let (rank, total) = ordering_rank(&[1, 0, 2]);
        for _ in 0..50 {
            let p = binned_join_point(&[1, 0, 2], 2, &mut rng);
            let bin = (p.coord(0) * total as f64).floor() as u64;
            assert_eq!(bin, rank);
        }
    }

    #[test]
    fn skewed_orderings_produce_imbalance() {
        // All nodes share one of two orderings: the space fills unevenly,
        // exactly the pathology the paper describes.
        let mut can = CanOverlay::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        for i in 0..200u32 {
            let ordering: &[usize] = if i % 2 == 0 { &[0, 1, 2] } else { &[0, 2, 1] };
            let p = binned_join_point(ordering, 2, &mut rng);
            can.join(NodeIdx(i), p);
        }
        let stats = ImbalanceStats::measure(&can);
        // 10% of nodes own the vast majority of the space.
        assert!(
            stats.top_share(0.10) > 0.5,
            "expected heavy imbalance, top 10% own {:.2}",
            stats.top_share(0.10)
        );
        assert!(stats.volume_spread() > 100.0);
    }

    #[test]
    fn uniform_joins_are_much_more_balanced() {
        let mut can = CanOverlay::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for i in 0..200u32 {
            can.join(NodeIdx(i), Point::random(2, &mut rng));
        }
        let stats = ImbalanceStats::measure(&can);
        assert!(
            stats.top_share(0.10) < 0.5,
            "uniform joins should be balanced, top 10% own {:.2}",
            stats.top_share(0.10)
        );
    }

    #[test]
    fn neighbor_stats_are_consistent() {
        let mut can = CanOverlay::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        for i in 0..64u32 {
            can.join(NodeIdx(i), Point::random(2, &mut rng));
        }
        let stats = ImbalanceStats::measure(&can);
        assert!(stats.max_neighbors() >= stats.mean_neighbors() as usize);
        assert!(stats.mean_neighbors() >= 2.0);
    }
}
