//! A Pastry-style prefix-routing overlay.
//!
//! The paper frames Pastry as the canonical *proximity-neighbor-selection*
//! overlay: "routing table entries are selected according to proximity
//! metric among all nodes that satisfy the constraint of the logical
//! overlay (e.g., in Pastry, the constraint is the nodeId prefix)". This
//! module provides that substrate so the global-soft-state machinery can be
//! demonstrated on it: 64-bit node ids routed digit by digit (base 16), a
//! routing table whose `(row r, digit d)` entry may be *any* node sharing
//! `r` digits with the owner and having `d` as its next digit — the
//! selection hook — plus a small leaf set for the final hops.
//!
//! # Example
//!
//! ```
//! use tao_overlay::pastry::{PastryOverlay, RandomEntrySelector};
//! use tao_topology::NodeIdx;
//! use tao_util::rand::{Rng, SeedableRng};
//!
//! let mut rng = tao_util::rand::rngs::StdRng::seed_from_u64(3);
//! let mut pastry = PastryOverlay::new(8);
//! for i in 0..64u32 {
//!     pastry.join(NodeIdx(i), rng.gen());
//! }
//! pastry.build_tables(&mut RandomEntrySelector::new(1));
//! let start = pastry.node_ids().next().unwrap();
//! let key: u64 = rng.gen();
//! let route = pastry.route(start, key).unwrap();
//! assert_eq!(*route.hops.last().unwrap(), pastry.root_of(key).unwrap());
//! ```

use std::collections::BTreeMap;
use std::fmt;

use tao_util::rand::rngs::StdRng;
use tao_util::rand::{Rng, SeedableRng};
use tao_topology::{NodeIdx, RttOracle};

/// A Pastry node identifier: 64 bits read as 16 hexadecimal digits, most
/// significant first.
pub type PastryId = u64;

/// Number of digits in an id (base 16 over 64 bits).
pub const DIGITS: u32 = 16;

/// Bits per digit.
pub const DIGIT_BITS: u32 = 4;

/// The `position`-th digit of `id` (0 = most significant).
///
/// # Panics
///
/// Panics if `position >= DIGITS`.
pub fn digit(id: PastryId, position: u32) -> u8 {
    assert!(position < DIGITS, "digit position out of range");
    ((id >> ((DIGITS - 1 - position) * DIGIT_BITS)) & 0xF) as u8
}

/// Length of the common digit prefix of `a` and `b` (0..=16).
pub fn shared_prefix_len(a: PastryId, b: PastryId) -> u32 {
    for p in 0..DIGITS {
        if digit(a, p) != digit(b, p) {
            return p;
        }
    }
    DIGITS
}

/// Errors from Pastry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PastryError {
    /// The overlay has no nodes.
    Empty,
    /// The named node is not present.
    UnknownNode(PastryId),
}

impl fmt::Display for PastryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PastryError::Empty => write!(f, "the overlay has no nodes"),
            PastryError::UnknownNode(id) => write!(f, "no node with id {id:#018x}"),
        }
    }
}

impl std::error::Error for PastryError {}

/// Chooses which prefix-matching node fills a routing-table slot — Pastry's
/// proximity-neighbor-selection hook.
pub trait EntrySelector {
    /// Picks one of `candidates` (non-empty, all satisfying the slot's
    /// prefix constraint) as the entry for `owner`.
    fn select(&mut self, owner: PastryId, candidates: &[PastryId], overlay: &PastryOverlay)
        -> PastryId;
}

/// Uniformly random prefix-matching node — the baseline.
#[derive(Debug, Clone)]
pub struct RandomEntrySelector {
    rng: StdRng,
}

impl RandomEntrySelector {
    /// Creates a selector with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomEntrySelector {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl EntrySelector for RandomEntrySelector {
    fn select(
        &mut self,
        _owner: PastryId,
        candidates: &[PastryId],
        _overlay: &PastryOverlay,
    ) -> PastryId {
        candidates[self.rng.gen_range(0..candidates.len())]
    }
}

/// The physically closest prefix-matching node via free ground truth — the
/// optimal curve.
#[derive(Debug, Clone)]
pub struct ClosestEntrySelector {
    oracle: RttOracle,
}

impl ClosestEntrySelector {
    /// Creates the optimal selector over `oracle`'s topology.
    pub fn new(oracle: RttOracle) -> Self {
        ClosestEntrySelector { oracle }
    }
}

impl EntrySelector for ClosestEntrySelector {
    fn select(
        &mut self,
        owner: PastryId,
        candidates: &[PastryId],
        overlay: &PastryOverlay,
    ) -> PastryId {
        let me = overlay.underlay(owner).expect("owner is present"); // tao-lint: allow(no-unwrap-in-lib, reason = "owner is present")
        *candidates
            .iter()
            .min_by(|&&a, &&b| {
                let da = self
                    .oracle
                    .ground_truth(me, overlay.underlay(a).expect("candidate present")); // tao-lint: allow(no-unwrap-in-lib, reason = "candidate present")
                let db = self
                    .oracle
                    .ground_truth(me, overlay.underlay(b).expect("candidate present")); // tao-lint: allow(no-unwrap-in-lib, reason = "candidate present")
                da.cmp(&db).then(a.cmp(&b))
            })
            .expect("candidates are non-empty") // tao-lint: allow(no-unwrap-in-lib, reason = "candidates are non-empty")
    }
}

#[derive(Debug, Clone)]
struct NodeState {
    underlay: NodeIdx,
    /// `table[row * 16 + digit]`: a node sharing `row` digits with the
    /// owner whose next digit is `digit`, if any exists.
    table: Vec<Option<PastryId>>,
    /// Nearest ids on either side (leaf set), ascending.
    leaves: Vec<PastryId>,
}

/// The result of routing: ids visited, origin first, the key's root last.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PastryRoute {
    /// Visited nodes in order.
    pub hops: Vec<PastryId>,
}

impl PastryRoute {
    /// Number of hops traversed.
    pub fn hop_count(&self) -> usize {
        self.hops.len().saturating_sub(1)
    }
}

/// A Pastry-style overlay: prefix routing tables plus leaf sets.
#[derive(Debug, Clone)]
pub struct PastryOverlay {
    nodes: BTreeMap<PastryId, NodeState>,
    leaf_set_half: usize,
}

impl PastryOverlay {
    /// Creates an empty overlay with `leaf_set_half` leaves on each side
    /// (Pastry's `L/2`; 8 is typical).
    ///
    /// # Panics
    ///
    /// Panics if `leaf_set_half` is zero.
    pub fn new(leaf_set_half: usize) -> Self {
        assert!(leaf_set_half > 0, "leaf set must be non-empty");
        PastryOverlay {
            nodes: BTreeMap::new(),
            leaf_set_half,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no nodes are present.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids, ascending.
    pub fn node_ids(&self) -> impl Iterator<Item = PastryId> + '_ {
        self.nodes.keys().copied()
    }

    /// The underlay router of `id`.
    pub fn underlay(&self, id: PastryId) -> Option<NodeIdx> {
        self.nodes.get(&id).map(|s| s.underlay)
    }

    /// Adds a node. Tables are not built until
    /// [`PastryOverlay::build_tables`].
    ///
    /// # Panics
    ///
    /// Panics on a duplicate id (ids come from a seeded RNG; collisions on
    /// 64 bits indicate a bug).
    pub fn join(&mut self, underlay: NodeIdx, id: PastryId) {
        let prev = self.nodes.insert(
            id,
            NodeState {
                underlay,
                table: vec![None; (DIGITS as usize) * 16],
                leaves: Vec::new(),
            },
        );
        assert!(prev.is_none(), "pastry id {id:#x} joined twice");
    }

    /// Removes a node.
    ///
    /// # Errors
    ///
    /// Returns [`PastryError::UnknownNode`] if absent.
    pub fn leave(&mut self, id: PastryId) -> Result<(), PastryError> {
        self.nodes
            .remove(&id)
            .map(|_| ())
            .ok_or(PastryError::UnknownNode(id))
    }

    /// The node numerically responsible for `key`: minimal ring distance
    /// (|id - key| on the wrapping 64-bit ring), ties to the lower id —
    /// Pastry's root definition.
    ///
    /// # Errors
    ///
    /// Returns [`PastryError::Empty`] on an empty overlay.
    pub fn root_of(&self, key: PastryId) -> Result<PastryId, PastryError> {
        self.nodes
            .keys()
            .copied()
            .min_by_key(|&id| (ring_distance(id, key), id))
            .ok_or(PastryError::Empty)
    }

    /// All nodes sharing the first `prefix_len` digits with `pattern` and
    /// (when `prefix_len < DIGITS`) having `next_digit` at that position.
    pub fn members_of_slot(
        &self,
        pattern: PastryId,
        prefix_len: u32,
        next_digit: u8,
    ) -> Vec<PastryId> {
        // The slot describes ids in a contiguous range: prefix fixed,
        // next digit fixed, remainder free.
        let shift = (DIGITS - prefix_len) * DIGIT_BITS;
        let base = if prefix_len == 0 {
            0
        } else {
            (pattern >> shift) << shift
        };
        let d_shift = (DIGITS - 1 - prefix_len) * DIGIT_BITS;
        let lo = base | ((next_digit as u64) << d_shift);
        let hi = lo.wrapping_add(1u64 << d_shift);
        if hi == 0 {
            // Range reaches the top of the id space.
            self.nodes.range(lo..).map(|(&id, _)| id).collect()
        } else {
            self.nodes.range(lo..hi).map(|(&id, _)| id).collect()
        }
    }

    /// (Re)builds every node's routing table and leaf set, choosing each
    /// slot's entry through `selector`.
    pub fn build_tables(&mut self, selector: &mut dyn EntrySelector) {
        let ids: Vec<PastryId> = self.node_ids().collect();
        for id in ids {
            self.rebuild_node(id, selector);
        }
    }

    /// Rebuilds one node's table and leaf set.
    ///
    /// # Panics
    ///
    /// Panics if `id` is absent.
    pub fn rebuild_node(&mut self, id: PastryId, selector: &mut dyn EntrySelector) {
        assert!(self.nodes.contains_key(&id), "node {id:#x} not present");
        let mut table = vec![None; (DIGITS as usize) * 16];
        for row in 0..DIGITS {
            let own_digit = digit(id, row);
            for d in 0..16u8 {
                if d == own_digit {
                    continue;
                }
                let mut candidates = self.members_of_slot(id, row, d);
                candidates.retain(|&c| c != id);
                if candidates.is_empty() {
                    continue;
                }
                let entry = selector.select(id, &candidates, self);
                table[(row as usize) * 16 + d as usize] = Some(entry);
            }
        }
        let leaves = self.leaf_set_of(id);
        let s = self.nodes.get_mut(&id).expect("checked above"); // tao-lint: allow(no-unwrap-in-lib, reason = "checked above")
        s.table = table;
        s.leaves = leaves;
    }

    fn leaf_set_of(&self, id: PastryId) -> Vec<PastryId> {
        let mut leaves = Vec::with_capacity(self.leaf_set_half * 2);
        // Clockwise successors.
        let mut it = self
            .nodes
            .range(id.wrapping_add(1)..)
            .map(|(&i, _)| i)
            .chain(self.nodes.range(..id).map(|(&i, _)| i));
        for _ in 0..self.leaf_set_half {
            match it.next() {
                Some(n) if n != id => leaves.push(n),
                _ => break,
            }
        }
        // Counter-clockwise predecessors.
        let mut it = self
            .nodes
            .range(..id)
            .rev()
            .map(|(&i, _)| i)
            .chain(self.nodes.range(id.wrapping_add(1)..).rev().map(|(&i, _)| i));
        for _ in 0..self.leaf_set_half {
            match it.next() {
                Some(n) if n != id && !leaves.contains(&n) => leaves.push(n),
                _ => break,
            }
        }
        leaves.sort_unstable();
        leaves
    }

    /// The routing-table entry of `id` for `(row, digit)`, if filled.
    pub fn table_entry(&self, id: PastryId, row: u32, d: u8) -> Option<PastryId> {
        self.nodes
            .get(&id)?
            .table
            .get((row as usize) * 16 + d as usize)
            .copied()
            .flatten()
    }

    /// The leaf set of `id`.
    pub fn leaves(&self, id: PastryId) -> &[PastryId] {
        self.nodes
            .get(&id)
            .map(|s| s.leaves.as_slice())
            .unwrap_or(&[])
    }

    /// Prefix routing: at each hop, use the table entry matching one more
    /// digit of the key; fall back to the numerically closest known node
    /// (leaf set ∪ table) that improves on the current distance; terminate
    /// at the key's root.
    ///
    /// # Errors
    ///
    /// Returns [`PastryError::UnknownNode`] for an absent start and
    /// [`PastryError::Empty`] on an empty overlay.
    pub fn route(&self, start: PastryId, key: PastryId) -> Result<PastryRoute, PastryError> {
        if !self.nodes.contains_key(&start) {
            return Err(PastryError::UnknownNode(start));
        }
        let root = self.root_of(key)?;
        let mut hops = vec![start];
        let mut current = start;
        while current != root {
            let p = shared_prefix_len(current, key);
            let wanted = digit(key, p.min(DIGITS - 1));
            let next = self
                .table_entry(current, p, wanted)
                .filter(|&n| self.nodes.contains_key(&n))
                .or_else(|| {
                    // Rare case: no table entry — take any known node
                    // strictly closer to the key numerically.
                    let here = ring_distance(current, key);
                    self.leaves(current)
                        .iter()
                        .copied()
                        .chain(
                            self.nodes
                                .get(&current)
                                .expect("current is present") // tao-lint: allow(no-unwrap-in-lib, reason = "current is present")
                                .table
                                .iter()
                                .flatten()
                                .copied(),
                        )
                        .filter(|&n| self.nodes.contains_key(&n))
                        .filter(|&n| ring_distance(n, key) < here)
                        .min_by_key(|&n| (ring_distance(n, key), n))
                });
            let Some(next) = next else {
                // No improvement available: current must be the root's
                // neighborhood; step through the leaf set toward the root.
                let step = self
                    .leaves(current)
                    .iter()
                    .copied()
                    .min_by_key(|&n| (ring_distance(n, key), n))
                    .filter(|&n| ring_distance(n, key) < ring_distance(current, key));
                match step {
                    Some(n) => {
                        hops.push(n);
                        current = n;
                        continue;
                    }
                    None => break, // numerically closest known node reached
                }
            };
            hops.push(next);
            current = next;
            if hops.len() > 2 * self.nodes.len() + 8 {
                unreachable!("pastry routing exceeded the hop bound");
            }
        }
        Ok(PastryRoute { hops })
    }

    /// Allocation-free variant of [`PastryOverlay::route`]: same hop
    /// sequence and errors, with the hop buffer reused from `scratch`. On
    /// success the hop sequence (start first) is in
    /// [`RouteScratch::ring_hops`](crate::RouteScratch::ring_hops); on
    /// error the scratch is still reusable.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PastryOverlay::route`].
    // tao-lint: hot
    // tao-lint: allow(panic-reachability, reason = "the unreachable! hop bound mirrors the allocating oracle's defensive invariant; the expect is guarded by the membership check on every hop")
    pub fn route_into(
        &self,
        scratch: &mut crate::RouteScratch,
        start: PastryId,
        key: PastryId,
    ) -> Result<(), PastryError> {
        if !self.nodes.contains_key(&start) {
            return Err(PastryError::UnknownNode(start));
        }
        let root = self.root_of(key)?;
        scratch.begin_ring();
        scratch.push_ring_hop(start);
        let mut current = start;
        while current != root {
            let p = shared_prefix_len(current, key);
            let wanted = digit(key, p.min(DIGITS - 1));
            let next = self
                .table_entry(current, p, wanted)
                .filter(|&n| self.nodes.contains_key(&n))
                .or_else(|| {
                    let here = ring_distance(current, key);
                    self.leaves(current)
                        .iter()
                        .copied()
                        .chain(
                            self.nodes
                                .get(&current)
                                .expect("current is present") // tao-lint: allow(no-unwrap-in-lib, reason = "current is present")
                                .table
                                .iter()
                                .flatten()
                                .copied(),
                        )
                        .filter(|&n| self.nodes.contains_key(&n))
                        .filter(|&n| ring_distance(n, key) < here)
                        .min_by_key(|&n| (ring_distance(n, key), n))
                });
            let Some(next) = next else {
                let step = self
                    .leaves(current)
                    .iter()
                    .copied()
                    .min_by_key(|&n| (ring_distance(n, key), n))
                    .filter(|&n| ring_distance(n, key) < ring_distance(current, key));
                match step {
                    Some(n) => {
                        scratch.push_ring_hop(n);
                        current = n;
                        continue;
                    }
                    None => break, // numerically closest known node reached
                }
            };
            scratch.push_ring_hop(next);
            current = next;
            if scratch.ring_hops_len() > 2 * self.nodes.len() + 8 {
                unreachable!("pastry routing exceeded the hop bound");
            }
        }
        Ok(())
    }

    /// Asserts the overlay's structural invariants, panicking with a
    /// description on the first violation:
    ///
    /// * **routing-table constraint** — every filled `(row, digit)` slot
    ///   holds a present node (not the owner) that shares `row` digits with
    ///   the owner and has `digit` at position `row` — the prefix symmetry
    ///   the paper's selection hook relies on;
    /// * **leaf-set freshness** — every node's leaf set equals the nearest
    ///   ids on the current membership (recomputed from scratch), so stale
    ///   leaves left by departures are caught.
    ///
    /// Intended for churn tests: call after `build_tables` /
    /// `rebuild_node` has repaired state.
    pub fn check_invariants(&self) {
        for (&id, s) in &self.nodes {
            for row in 0..DIGITS {
                for d in 0..16u8 {
                    let Some(e) = s.table[(row as usize) * 16 + d as usize] else {
                        continue;
                    };
                    assert!(
                        self.nodes.contains_key(&e),
                        "table ({row},{d:#x}) of {id:#018x} holds departed {e:#018x}"
                    );
                    assert_ne!(e, id, "table ({row},{d:#x}) of {id:#018x} is a self-loop");
                    assert!(
                        shared_prefix_len(e, id) >= row,
                        "table ({row},{d:#x}) of {id:#018x} breaks the prefix constraint"
                    );
                    assert_eq!(
                        digit(e, row),
                        d,
                        "table ({row},{d:#x}) of {id:#018x} has the wrong next digit"
                    );
                }
            }
            let expected = self.leaf_set_of(id);
            assert_eq!(
                s.leaves, expected,
                "leaf set of {id:#018x} is stale (expected the nearest ids)"
            );
        }
    }
}

/// Minimal wrapping distance between two ids on the 64-bit ring.
fn ring_distance(a: PastryId, b: PastryId) -> u64 {
    let d = a.wrapping_sub(b);
    d.min(b.wrapping_sub(a))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overlay_of(n: u32, seed: u64) -> PastryOverlay {
        let mut o = PastryOverlay::new(8);
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..n {
            o.join(NodeIdx(i), rng.gen());
        }
        o.build_tables(&mut RandomEntrySelector::new(seed ^ 1));
        o
    }

    #[test]
    fn digits_and_prefixes() {
        let id: PastryId = 0xABCD_0000_0000_0000;
        assert_eq!(digit(id, 0), 0xA);
        assert_eq!(digit(id, 3), 0xD);
        assert_eq!(digit(id, 15), 0x0);
        assert_eq!(shared_prefix_len(0xAB00, 0xAB00), DIGITS);
        assert_eq!(
            shared_prefix_len(0xA000_0000_0000_0000, 0xB000_0000_0000_0000),
            0
        );
        assert_eq!(
            shared_prefix_len(0xAB00_0000_0000_0000, 0xAC00_0000_0000_0000),
            1
        );
    }

    #[test]
    fn slot_members_satisfy_the_constraint() {
        let o = overlay_of(256, 3);
        let id = o.node_ids().next().unwrap();
        for row in 0..3u32 {
            for d in 0..16u8 {
                for m in o.members_of_slot(id, row, d) {
                    assert!(shared_prefix_len(m, id) >= row);
                    assert_eq!(digit(m, row), d);
                }
            }
        }
    }

    #[test]
    fn table_entries_respect_their_slots() {
        let o = overlay_of(128, 5);
        for id in o.node_ids() {
            for row in 0..DIGITS {
                for d in 0..16u8 {
                    if let Some(e) = o.table_entry(id, row, d) {
                        assert!(shared_prefix_len(e, id) >= row);
                        assert_eq!(digit(e, row), d);
                        assert_ne!(e, id);
                    }
                }
            }
        }
    }

    #[test]
    fn routing_reaches_the_root() {
        let o = overlay_of(256, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let ids: Vec<PastryId> = o.node_ids().collect();
        for _ in 0..200 {
            let start = ids[rng.gen_range(0..ids.len())];
            let key: PastryId = rng.gen();
            let route = o.route(start, key).unwrap();
            assert_eq!(*route.hops.last().unwrap(), o.root_of(key).unwrap());
        }
    }

    #[test]
    fn routing_is_logarithmic_in_digits() {
        let o = overlay_of(1024, 9);
        let mut rng = StdRng::seed_from_u64(10);
        let ids: Vec<PastryId> = o.node_ids().collect();
        let mut total = 0usize;
        const ROUTES: usize = 200;
        for _ in 0..ROUTES {
            let start = ids[rng.gen_range(0..ids.len())];
            total += o.route(start, rng.gen()).unwrap().hop_count();
        }
        let avg = total as f64 / ROUTES as f64;
        // Theory: ~log16(1024) = 2.5 digit hops plus leaf-set steps.
        assert!(avg < 6.0, "pastry average hops {avg} is not logarithmic");
    }

    #[test]
    fn leaf_sets_are_the_nearest_ids() {
        let o = overlay_of(64, 11);
        for id in o.node_ids() {
            let leaves = o.leaves(id);
            assert!(leaves.len() >= 8, "leaf set too small: {}", leaves.len());
            assert!(!leaves.contains(&id));
        }
    }

    #[test]
    fn root_is_the_numerically_closest_node() {
        let mut o = PastryOverlay::new(2);
        o.join(NodeIdx(0), 100);
        o.join(NodeIdx(1), 200);
        o.join(NodeIdx(2), u64::MAX - 50);
        assert_eq!(o.root_of(120).unwrap(), 100);
        assert_eq!(o.root_of(180).unwrap(), 200);
        assert_eq!(o.root_of(u64::MAX - 10).unwrap(), u64::MAX - 50);
        // Wrapping: key 10 is closer to MAX-50 (distance 61) than to 100.
        assert_eq!(o.root_of(10).unwrap(), u64::MAX - 50);
    }

    #[test]
    fn departures_surface_as_errors_and_reroutes() {
        let mut o = overlay_of(64, 13);
        let victim = o.node_ids().nth(10).unwrap();
        o.leave(victim).unwrap();
        assert!(o.leave(victim).is_err());
        o.build_tables(&mut RandomEntrySelector::new(14));
        let ids: Vec<PastryId> = o.node_ids().collect();
        let mut rng = StdRng::seed_from_u64(15);
        for _ in 0..50 {
            let start = ids[rng.gen_range(0..ids.len())];
            let key: PastryId = rng.gen();
            let route = o.route(start, key).unwrap();
            assert!(route.hops.iter().all(|&h| h != victim));
        }
    }

    #[test]
    fn empty_overlay_errors() {
        let o = PastryOverlay::new(4);
        assert_eq!(o.root_of(5), Err(PastryError::Empty));
        assert!(PastryError::UnknownNode(0xAB)
            .to_string()
            .contains("0x00000000000000ab"));
    }
}
