//! The published soft-state objects.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use tao_landmark::{LandmarkNumber, LandmarkVector};
use tao_overlay::{OverlayNodeId, Point};
use tao_sim::{SimDuration, SimTime};
use tao_topology::NodeIdx;

/// Load and capacity statistics a node may publish alongside its proximity
/// information (§6: "a node periodically publishes these statistics along
/// with its proximity information").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadStats {
    /// Maximum forwarding capacity (requests/second, abstract units).
    pub capacity: f64,
    /// Current load in the same units.
    pub current_load: f64,
}

impl LoadStats {
    /// Load as a fraction of capacity (`0.0` = idle; may exceed `1.0` when
    /// overloaded).
    ///
    /// # Panics
    ///
    /// Panics if capacity is not positive.
    pub fn utilization(&self) -> f64 {
        assert!(self.capacity > 0.0, "capacity must be positive");
        self.current_load / self.capacity
    }
}

/// Everything the system knows about one node: the payload of its
/// soft-state objects.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInfo {
    /// The node's overlay identity.
    pub node: OverlayNodeId,
    /// The underlay router it runs on.
    pub underlay: NodeIdx,
    /// Its full landmark vector (used for final candidate ranking).
    pub vector: LandmarkVector,
    /// Its landmark number (the DHT key of its soft-state).
    pub number: LandmarkNumber,
    /// Optional load statistics (§6).
    pub load: Option<LoadStats>,
}

/// One stored object: the paper's `<Z, n, p>` triple — node info `n`,
/// placed at position `p` within region `Z` — plus its expiry.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftStateEntry {
    /// The published node information.
    pub info: NodeInfo,
    /// The position within the region where the object is stored.
    pub position: Point,
    /// Virtual time at which the entry lapses unless refreshed.
    pub expires_at: SimTime,
}

impl SoftStateEntry {
    /// `true` if the entry is still live at `now`.
    pub fn is_live(&self, now: SimTime) -> bool {
        now < self.expires_at
    }

    /// Refreshes the entry to expire `ttl` after `now`.
    pub fn refresh(&mut self, now: SimTime, ttl: SimDuration) {
        self.expires_at = now + ttl;
    }

    /// Serialises the entry to a compact wire format (used to account for
    /// soft-state message sizes).
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        b.put_u32(self.info.node.0);
        b.put_u32(self.info.underlay.0);
        b.put_u128(self.info.number.value());
        b.put_u64(self.expires_at.as_micros());
        b.put_u16(self.info.vector.len() as u16);
        for r in self.info.vector.rtts() {
            b.put_u64(r.as_micros());
        }
        b.put_u16(self.position.dims() as u16);
        for &c in self.position.coords() {
            b.put_f64(c);
        }
        match self.info.load {
            Some(l) => {
                b.put_u8(1);
                b.put_f64(l.capacity);
                b.put_f64(l.current_load);
            }
            None => b.put_u8(0),
        }
        b.freeze()
    }

    /// Decodes an entry produced by [`SoftStateEntry::encode`].
    ///
    /// Returns `None` on truncated or malformed input.
    pub fn decode(mut data: Bytes) -> Option<Self> {
        fn need(data: &Bytes, n: usize) -> Option<()> {
            (data.remaining() >= n).then_some(())
        }
        need(&data, 4 + 4 + 16 + 8 + 2)?;
        let node = OverlayNodeId(data.get_u32());
        let underlay = NodeIdx(data.get_u32());
        let number = LandmarkNumber::new(data.get_u128());
        let expires_at = SimTime::from_micros(data.get_u64());
        let vec_len = data.get_u16() as usize;
        if vec_len == 0 {
            return None;
        }
        need(&data, vec_len * 8 + 2)?;
        let rtts = (0..vec_len)
            .map(|_| SimDuration::from_micros(data.get_u64()))
            .collect();
        let vector = LandmarkVector::new(rtts);
        let dims = data.get_u16() as usize;
        need(&data, dims * 8 + 1)?;
        let coords: Vec<f64> = (0..dims).map(|_| data.get_f64()).collect();
        let position = Point::new(coords)?;
        let load = match data.get_u8() {
            0 => None,
            1 => {
                need(&data, 16)?;
                Some(LoadStats {
                    capacity: data.get_f64(),
                    current_load: data.get_f64(),
                })
            }
            _ => return None,
        };
        Some(SoftStateEntry {
            info: NodeInfo {
                node,
                underlay,
                vector,
                number,
                load,
            },
            position,
            expires_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry(load: Option<LoadStats>) -> SoftStateEntry {
        SoftStateEntry {
            info: NodeInfo {
                node: OverlayNodeId(42),
                underlay: NodeIdx(7),
                vector: LandmarkVector::from_millis(&[10.0, 20.0, 30.0]),
                number: LandmarkNumber::new(0xDEADBEEF),
                load,
            },
            position: Point::new(vec![0.25, 0.75]).unwrap(),
            expires_at: SimTime::from_micros(5_000_000),
        }
    }

    #[test]
    fn liveness_follows_the_clock() {
        let mut e = sample_entry(None);
        assert!(e.is_live(SimTime::from_micros(4_999_999)));
        assert!(!e.is_live(SimTime::from_micros(5_000_000)));
        e.refresh(SimTime::from_micros(5_000_000), SimDuration::from_secs(1));
        assert!(e.is_live(SimTime::from_micros(5_500_000)));
    }

    #[test]
    fn encode_decode_round_trips_without_load() {
        let e = sample_entry(None);
        let decoded = SoftStateEntry::decode(e.encode()).unwrap();
        assert_eq!(decoded, e);
    }

    #[test]
    fn encode_decode_round_trips_with_load() {
        let e = sample_entry(Some(LoadStats {
            capacity: 100.0,
            current_load: 73.5,
        }));
        let decoded = SoftStateEntry::decode(e.encode()).unwrap();
        assert_eq!(decoded, e);
    }

    #[test]
    fn truncated_input_is_rejected() {
        let e = sample_entry(None);
        let full = e.encode();
        for cut in [0, 1, 10, full.len() - 1] {
            assert!(
                SoftStateEntry::decode(full.slice(..cut)).is_none(),
                "decode must fail at {cut} bytes"
            );
        }
    }

    #[test]
    fn utilization_divides_load_by_capacity() {
        let l = LoadStats {
            capacity: 200.0,
            current_load: 50.0,
        };
        assert!((l.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn utilization_rejects_zero_capacity() {
        LoadStats {
            capacity: 0.0,
            current_load: 1.0,
        }
        .utilization();
    }
}
