//! The published soft-state objects.

use tao_landmark::{LandmarkNumber, LandmarkVector};
use tao_util::bytes::{ByteReader, ByteWriter};
use tao_overlay::{OverlayNodeId, Point};
use tao_util::time::{SimDuration, SimTime};
use tao_topology::NodeIdx;

/// Load and capacity statistics a node may publish alongside its proximity
/// information (§6: "a node periodically publishes these statistics along
/// with its proximity information").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadStats {
    /// Maximum forwarding capacity (requests/second, abstract units).
    pub capacity: f64,
    /// Current load in the same units.
    pub current_load: f64,
}

impl LoadStats {
    /// Load as a fraction of capacity (`0.0` = idle; may exceed `1.0` when
    /// overloaded).
    ///
    /// # Panics
    ///
    /// Panics if capacity is not positive.
    pub fn utilization(&self) -> f64 {
        assert!(self.capacity > 0.0, "capacity must be positive");
        self.current_load / self.capacity
    }
}

/// Everything the system knows about one node: the payload of its
/// soft-state objects.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInfo {
    /// The node's overlay identity.
    pub node: OverlayNodeId,
    /// The underlay router it runs on.
    pub underlay: NodeIdx,
    /// Its full landmark vector (used for final candidate ranking).
    pub vector: LandmarkVector,
    /// Its landmark number (the DHT key of its soft-state).
    pub number: LandmarkNumber,
    /// Optional load statistics (§6).
    pub load: Option<LoadStats>,
}

/// One stored object: the paper's `<Z, n, p>` triple — node info `n`,
/// placed at position `p` within region `Z` — plus its expiry.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftStateEntry {
    /// The published node information.
    pub info: NodeInfo,
    /// The position within the region where the object is stored.
    pub position: Point,
    /// Virtual time at which the entry lapses unless refreshed.
    pub expires_at: SimTime,
}

impl SoftStateEntry {
    /// `true` if the entry is still live at `now`.
    pub fn is_live(&self, now: SimTime) -> bool {
        now < self.expires_at
    }

    /// Refreshes the entry to expire `ttl` after `now`.
    pub fn refresh(&mut self, now: SimTime, ttl: SimDuration) {
        self.expires_at = now + ttl;
    }

    /// Serialises the entry to a compact big-endian wire format (used to
    /// account for soft-state message sizes).
    pub fn encode(&self) -> Vec<u8> {
        let mut b = ByteWriter::new();
        b.put_u32(self.info.node.0);
        b.put_u32(self.info.underlay.0);
        b.put_u128(self.info.number.value());
        b.put_u64(self.expires_at.as_micros());
        b.put_u16(self.info.vector.len() as u16);
        for r in self.info.vector.rtts() {
            b.put_u64(r.as_micros());
        }
        b.put_u16(self.position.dims() as u16);
        for &c in self.position.coords() {
            b.put_f64(c);
        }
        match self.info.load {
            Some(l) => {
                b.put_u8(1);
                b.put_f64(l.capacity);
                b.put_f64(l.current_load);
            }
            None => b.put_u8(0),
        }
        b.into_vec()
    }

    /// Decodes an entry produced by [`SoftStateEntry::encode`].
    ///
    /// Returns `None` on truncated or malformed input.
    pub fn decode(data: &[u8]) -> Option<Self> {
        let mut r = ByteReader::new(data);
        let node = OverlayNodeId(r.get_u32()?);
        let underlay = NodeIdx(r.get_u32()?);
        let number = LandmarkNumber::new(r.get_u128()?);
        let expires_at = SimTime::from_micros(r.get_u64()?);
        let vec_len = r.get_u16()? as usize;
        if vec_len == 0 {
            return None;
        }
        let mut rtts = Vec::with_capacity(vec_len);
        for _ in 0..vec_len {
            rtts.push(SimDuration::from_micros(r.get_u64()?));
        }
        let vector = LandmarkVector::new(rtts);
        let dims = r.get_u16()? as usize;
        let mut coords = Vec::with_capacity(dims);
        for _ in 0..dims {
            coords.push(r.get_f64()?);
        }
        let position = Point::new(coords)?;
        let load = match r.get_u8()? {
            0 => None,
            1 => Some(LoadStats {
                capacity: r.get_f64()?,
                current_load: r.get_f64()?,
            }),
            _ => return None,
        };
        Some(SoftStateEntry {
            info: NodeInfo {
                node,
                underlay,
                vector,
                number,
                load,
            },
            position,
            expires_at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_entry(load: Option<LoadStats>) -> SoftStateEntry {
        SoftStateEntry {
            info: NodeInfo {
                node: OverlayNodeId(42),
                underlay: NodeIdx(7),
                vector: LandmarkVector::from_millis(&[10.0, 20.0, 30.0]),
                number: LandmarkNumber::new(0xDEADBEEF),
                load,
            },
            position: Point::new(vec![0.25, 0.75]).unwrap(),
            expires_at: SimTime::from_micros(5_000_000),
        }
    }

    #[test]
    fn liveness_follows_the_clock() {
        let mut e = sample_entry(None);
        assert!(e.is_live(SimTime::from_micros(4_999_999)));
        assert!(!e.is_live(SimTime::from_micros(5_000_000)));
        e.refresh(SimTime::from_micros(5_000_000), SimDuration::from_secs(1));
        assert!(e.is_live(SimTime::from_micros(5_500_000)));
    }

    #[test]
    fn encode_decode_round_trips_without_load() {
        let e = sample_entry(None);
        let decoded = SoftStateEntry::decode(&e.encode()).unwrap();
        assert_eq!(decoded, e);
    }

    #[test]
    fn encode_decode_round_trips_with_load() {
        let e = sample_entry(Some(LoadStats {
            capacity: 100.0,
            current_load: 73.5,
        }));
        let decoded = SoftStateEntry::decode(&e.encode()).unwrap();
        assert_eq!(decoded, e);
    }

    #[test]
    fn truncated_input_is_rejected_at_every_length() {
        // Cut the wire image at *every* prefix length: any mid-field or
        // mid-structure truncation must fail cleanly, never panic.
        let e = sample_entry(Some(LoadStats {
            capacity: 10.0,
            current_load: 2.0,
        }));
        let full = e.encode();
        for cut in 0..full.len() {
            assert!(
                SoftStateEntry::decode(&full[..cut]).is_none(),
                "decode must fail at {cut} bytes"
            );
        }
        assert!(SoftStateEntry::decode(&full).is_some());
    }

    #[test]
    fn wire_image_length_matches_the_field_layout() {
        // 4 node + 4 underlay + 16 number + 8 expiry + 2 vec_len +
        // 8*len rtts + 2 dims + 8*dims coords + 1 load tag [+ 16 load].
        let without = sample_entry(None).encode();
        assert_eq!(without.len(), 4 + 4 + 16 + 8 + 2 + 8 * 3 + 2 + 8 * 2 + 1);
        let with = sample_entry(Some(LoadStats {
            capacity: 1.0,
            current_load: 0.5,
        }))
        .encode();
        assert_eq!(with.len(), without.len() + 16);
    }

    #[test]
    fn random_entries_round_trip_through_the_codec() {
        use tao_util::check::for_all;
        use tao_util::rand::Rng;
        use tao_util::check_eq;

        for_all("entry_codec_round_trip", 128, |rng| {
            let vec_len = rng.gen_range(1usize..=8);
            let ms: Vec<f64> = (0..vec_len).map(|_| rng.gen_range(0.0..500.0)).collect();
            let dims = rng.gen_range(1usize..=4);
            let coords: Vec<f64> = (0..dims).map(|_| rng.gen_range(0.0..1.0)).collect();
            let load = if rng.gen_bool(0.5) {
                Some(LoadStats {
                    capacity: rng.gen_range(1.0..1000.0),
                    current_load: rng.gen_range(0.0..1500.0),
                })
            } else {
                None
            };
            let e = SoftStateEntry {
                info: NodeInfo {
                    node: OverlayNodeId(rng.gen()),
                    underlay: NodeIdx(rng.gen()),
                    vector: LandmarkVector::from_millis(&ms),
                    number: LandmarkNumber::new(rng.gen()),
                    load,
                },
                position: Point::new(coords).expect("in-range coords"),
                expires_at: SimTime::from_micros(rng.gen_range(0..u64::MAX / 2)),
            };
            let decoded = SoftStateEntry::decode(&e.encode()).expect("decodes");
            check_eq!(decoded, e);
        });
    }

    #[test]
    fn malformed_load_tag_is_rejected() {
        let e = sample_entry(None);
        let mut wire = e.encode();
        *wire.last_mut().unwrap() = 7; // neither 0 nor 1
        assert!(SoftStateEntry::decode(&wire).is_none());
    }

    #[test]
    fn utilization_divides_load_by_capacity() {
        let l = LoadStats {
            capacity: 200.0,
            current_load: 50.0,
        };
        assert!((l.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn utilization_rejects_zero_capacity() {
        LoadStats {
            capacity: 0.0,
            current_load: 1.0,
        }
        .utilization();
    }
}
