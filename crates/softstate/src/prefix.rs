//! Global soft-state partitioned by node-id prefixes — the Pastry mapping.
//!
//! From the paper: "for overlays such as Pastry, a region is a set of nodes
//! sharing a particular prefix … (For Pastry, there is one map for [each]
//! nodeId prefix)". Each map holds the proximity records of every node
//! under that prefix, sorted by landmark number, exactly like the eCAN
//! zone maps; a node appears in one map per prefix length, ≤ log N total.

use std::collections::BTreeMap;

use tao_util::det::DetMap;

use tao_landmark::{LandmarkNumber, LandmarkVector};
use tao_overlay::pastry::{PastryId, DIGITS, DIGIT_BITS};
use tao_util::time::SimTime;
use tao_topology::NodeIdx;

use crate::config::SoftStateConfig;

/// Identifies one prefix region: the first `len` digits of `bits` (the
/// remaining digits are zeroed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrefixKey {
    /// Number of significant leading digits.
    pub len: u32,
    /// The id with all non-prefix digits cleared.
    pub bits: u64,
}

impl PrefixKey {
    /// The prefix of `id` with `len` digits.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`DIGITS`].
    pub fn of(id: PastryId, len: u32) -> Self {
        assert!(len <= DIGITS, "prefix length out of range");
        let bits = if len == 0 {
            0
        } else {
            let shift = (DIGITS - len) * DIGIT_BITS;
            (id >> shift) << shift
        };
        PrefixKey { len, bits }
    }

    /// `true` if `id` lies under this prefix.
    pub fn covers(&self, id: PastryId) -> bool {
        PrefixKey::of(id, self.len) == *self
    }
}

/// A Pastry node's published soft-state record.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixRecord {
    /// The publishing node's id.
    pub id: PastryId,
    /// The underlay router it runs on.
    pub underlay: NodeIdx,
    /// Its full landmark vector.
    pub vector: LandmarkVector,
    /// Its landmark number.
    pub number: LandmarkNumber,
}

/// One prefix map: records keyed by `(landmark number, publisher)` with
/// their expiry times.
type PrefixMap = BTreeMap<(u128, PastryId), (PrefixRecord, SimTime)>;

/// The per-prefix proximity maps of a Pastry overlay.
#[derive(Debug, Clone)]
pub struct PrefixState {
    config: SoftStateConfig,
    max_len: u32,
    maps: DetMap<PrefixKey, PrefixMap>,
}

impl PrefixState {
    /// Creates an empty store covering prefixes of length `1..=max_len`
    /// (pick `max_len ≈ log16 N + 1`; deeper prefixes hold single nodes).
    ///
    /// # Panics
    ///
    /// Panics unless `max_len` is in `1..=DIGITS`.
    pub fn new(config: SoftStateConfig, max_len: u32) -> Self {
        assert!(
            (1..=DIGITS).contains(&max_len),
            "max_len must be in 1..=DIGITS"
        );
        PrefixState {
            config,
            max_len,
            maps: DetMap::new(),
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> &SoftStateConfig {
        &self.config
    }

    /// Deepest prefix length that gets a map.
    pub fn max_len(&self) -> u32 {
        self.max_len
    }

    /// Number of prefix maps that exist so far.
    pub fn map_count(&self) -> usize {
        self.maps.len()
    }

    /// Total records across all maps.
    pub fn total_entries(&self) -> usize {
        self.maps.values().map(BTreeMap::len).sum()
    }

    /// Publishes (or refreshes) `record` into every map along its prefix
    /// path. Returns how many maps were written.
    pub fn publish(&mut self, record: PrefixRecord, now: SimTime) -> usize {
        let expiry = now + self.config.ttl();
        for len in 1..=self.max_len {
            let key = PrefixKey::of(record.id, len);
            self.maps
                .entry(key)
                .or_default()
                .insert((record.number.value(), record.id), (record.clone(), expiry));
        }
        self.max_len as usize
    }

    /// Withdraws every record of `id`; returns how many maps were touched.
    pub fn remove(&mut self, id: PastryId) -> usize {
        let mut touched = 0;
        for map in self.maps.values_mut() {
            let before = map.len();
            map.retain(|(_, publisher), _| *publisher != id);
            touched += usize::from(map.len() != before);
        }
        touched
    }

    /// Drops lapsed records everywhere; returns how many were dropped.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let mut dropped = 0;
        for map in self.maps.values_mut() {
            let before = map.len();
            map.retain(|_, (_, expiry)| now < *expiry);
            dropped += before - map.len();
        }
        dropped
    }

    /// The Table-1 lookup against the map of `region`: scan outward from
    /// the query's landmark number (up to `overscan` records per side),
    /// rank live candidates by full-vector distance, return up to `max`.
    /// The querying node never appears in its own results.
    pub fn lookup(
        &self,
        region: PrefixKey,
        query: &PrefixRecord,
        max: usize,
        overscan: usize,
        now: SimTime,
    ) -> Vec<PrefixRecord> {
        let Some(map) = self.maps.get(&region) else {
            return Vec::new();
        };
        let pivot = (query.number.value(), 0u64);
        let mut candidates: Vec<&PrefixRecord> = Vec::new();
        candidates.extend(
            map.range(pivot..)
                .take(overscan)
                .filter(|(_, (_, expiry))| now < *expiry)
                .map(|(_, (r, _))| r),
        );
        candidates.extend(
            map.range(..pivot)
                .rev()
                .take(overscan)
                .filter(|(_, (_, expiry))| now < *expiry)
                .map(|(_, (r, _))| r),
        );
        candidates.retain(|r| r.id != query.id);
        candidates.sort_by(|a, b| {
            let da = query.vector.euclidean_ms(&a.vector);
            let db = query.vector.euclidean_ms(&b.vector);
            da.partial_cmp(&db)
                .expect("distances are finite") // tao-lint: allow(no-unwrap-in-lib, reason = "distances are finite")
                .then(a.id.cmp(&b.id))
        });
        candidates.into_iter().take(max).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_landmark::LandmarkGrid;
    use tao_util::time::SimDuration;

    fn config() -> SoftStateConfig {
        let grid = LandmarkGrid::new(3, 5, SimDuration::from_millis(320)).expect("valid grid");
        SoftStateConfig::builder(grid).build()
    }

    fn record(id: PastryId, millis: [f64; 3], cfg: &SoftStateConfig) -> PrefixRecord {
        let vector = LandmarkVector::from_millis(&millis);
        let number = cfg.grid().landmark_number(&vector, cfg.curve());
        PrefixRecord {
            id,
            underlay: NodeIdx(id as u32 & 0xFFFF),
            vector,
            number,
        }
    }

    #[test]
    fn prefix_keys_nest_and_cover() {
        let id: PastryId = 0xAB12_0000_0000_0000;
        let p1 = PrefixKey::of(id, 1);
        let p2 = PrefixKey::of(id, 2);
        assert_eq!(p1.bits, 0xA000_0000_0000_0000);
        assert_eq!(p2.bits, 0xAB00_0000_0000_0000);
        assert!(p1.covers(id));
        assert!(p2.covers(id));
        assert!(!p2.covers(0xAC00_0000_0000_0000));
        assert!(p1.covers(0xAC00_0000_0000_0000));
    }

    #[test]
    fn publish_writes_one_map_per_prefix_length() {
        let cfg = config();
        let mut s = PrefixState::new(cfg, 3);
        let written = s.publish(record(0xAB12_0000_0000_0000, [10.0, 20.0, 30.0], &cfg), SimTime::ORIGIN);
        assert_eq!(written, 3);
        assert_eq!(s.map_count(), 3);
        assert_eq!(s.total_entries(), 3);
    }

    #[test]
    fn siblings_share_shallow_maps_only() {
        let cfg = config();
        let mut s = PrefixState::new(cfg, 2);
        s.publish(record(0xAA00_0000_0000_0000, [10.0, 20.0, 30.0], &cfg), SimTime::ORIGIN);
        s.publish(record(0xAB00_0000_0000_0000, [11.0, 21.0, 31.0], &cfg), SimTime::ORIGIN);
        // Same first digit: shared len-1 map plus two distinct len-2 maps.
        assert_eq!(s.map_count(), 3);
    }

    #[test]
    fn lookup_ranks_by_vector_and_respects_region() {
        let cfg = config();
        let mut s = PrefixState::new(cfg, 2);
        let near = record(0xA100_0000_0000_0000, [10.0, 40.0, 90.0], &cfg);
        let far = record(0xA200_0000_0000_0000, [300.0, 310.0, 305.0], &cfg);
        let other_region = record(0xB100_0000_0000_0000, [10.0, 40.0, 90.0], &cfg);
        for r in [&near, &far, &other_region] {
            s.publish(r.clone(), SimTime::ORIGIN);
        }
        let query = record(0xA900_0000_0000_0000, [12.0, 41.0, 88.0], &cfg);
        let region = PrefixKey::of(query.id, 1); // all of 0xA…
        let found = s.lookup(region, &query, 5, 32, SimTime::ORIGIN);
        assert_eq!(found.len(), 2, "0xB… node must not appear");
        assert_eq!(found[0].id, near.id);
    }

    #[test]
    fn expiry_and_removal() {
        let cfg = config();
        let mut s = PrefixState::new(cfg, 2);
        let r = record(0xCC00_0000_0000_0000, [10.0, 20.0, 30.0], &cfg);
        s.publish(r.clone(), SimTime::ORIGIN);
        assert_eq!(s.remove(r.id), 2);
        s.publish(r.clone(), SimTime::ORIGIN);
        let later = SimTime::ORIGIN + cfg.ttl() + SimDuration::from_secs(1);
        assert_eq!(s.expire(later), 2);
        let region = PrefixKey::of(r.id, 1);
        assert!(s.lookup(region, &r, 5, 32, later).is_empty());
    }

    #[test]
    fn missing_region_is_empty() {
        let cfg = config();
        let s = PrefixState::new(cfg, 2);
        let q = record(0xDD00_0000_0000_0000, [1.0, 2.0, 3.0], &cfg);
        assert!(s
            .lookup(PrefixKey::of(q.id, 1), &q, 5, 32, SimTime::ORIGIN)
            .is_empty());
    }
}
