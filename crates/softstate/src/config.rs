//! Configuration of the global soft-state subsystem.

use tao_landmark::{LandmarkGrid, SpaceFillingCurve};
use tao_util::time::SimDuration;

/// Configuration shared by all maps: how landmark numbers are computed, how
/// maps are condensed, and how long entries live.
///
/// Build with [`SoftStateConfig::builder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftStateConfig {
    grid: LandmarkGrid,
    curve: SpaceFillingCurve,
    condense_rate: f64,
    ttl: SimDuration,
    position_resolution_bits: u32,
}

/// Builder for [`SoftStateConfig`].
///
/// # Example
///
/// ```
/// use tao_softstate::SoftStateConfig;
/// use tao_landmark::{LandmarkGrid, SpaceFillingCurve};
/// use tao_util::time::SimDuration;
///
/// let grid = LandmarkGrid::new(3, 5, SimDuration::from_millis(320)).unwrap();
/// let config = SoftStateConfig::builder(grid)
///     .curve(SpaceFillingCurve::Hilbert)
///     .condense_rate(0.5)
///     .ttl(SimDuration::from_secs(30))
///     .build();
/// assert_eq!(config.condense_rate(), 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct SoftStateConfigBuilder {
    config: SoftStateConfig,
}

impl SoftStateConfig {
    /// Starts a builder with the paper's defaults: Hilbert curve, condense
    /// rate 1/4, 60-second TTL.
    pub fn builder(grid: LandmarkGrid) -> SoftStateConfigBuilder {
        SoftStateConfigBuilder {
            config: SoftStateConfig {
                grid,
                curve: SpaceFillingCurve::Hilbert,
                condense_rate: 0.25,
                ttl: SimDuration::from_secs(60),
                position_resolution_bits: 10,
            },
        }
    }

    /// The landmark-space grid used to derive landmark numbers.
    pub fn grid(&self) -> &LandmarkGrid {
        &self.grid
    }

    /// The space-filling curve used both for landmark numbers and for
    /// region positions.
    pub fn curve(&self) -> SpaceFillingCurve {
        self.curve
    }

    /// The map condense rate: the fraction of a region's volume that hosts
    /// its map (1.0 = the map spreads across the whole region).
    pub fn condense_rate(&self) -> f64 {
        self.condense_rate
    }

    /// Entry time-to-live.
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    /// Bits of resolution when hashing a landmark number to a region
    /// position.
    pub fn position_resolution_bits(&self) -> u32 {
        self.position_resolution_bits
    }
}

impl SoftStateConfigBuilder {
    /// Sets the space-filling curve.
    pub fn curve(&mut self, curve: SpaceFillingCurve) -> &mut Self {
        self.config.curve = curve;
        self
    }

    /// Sets the condense rate.
    ///
    /// # Panics
    ///
    /// Panics unless `rate` is in `(0, 1]`.
    pub fn condense_rate(&mut self, rate: f64) -> &mut Self {
        assert!(
            rate > 0.0 && rate <= 1.0,
            "condense rate must be in (0, 1], got {rate}"
        );
        self.config.condense_rate = rate;
        self
    }

    /// Sets the entry TTL.
    ///
    /// # Panics
    ///
    /// Panics if `ttl` is zero.
    pub fn ttl(&mut self, ttl: SimDuration) -> &mut Self {
        assert!(!ttl.is_zero(), "TTL must be positive");
        self.config.ttl = ttl;
        self
    }

    /// Sets the region-position resolution.
    ///
    /// # Panics
    ///
    /// Panics unless `bits` is in `1..=16`.
    pub fn position_resolution_bits(&mut self, bits: u32) -> &mut Self {
        assert!((1..=16).contains(&bits), "resolution bits must be in 1..=16");
        self.config.position_resolution_bits = bits;
        self
    }

    /// Produces the configuration.
    pub fn build(&self) -> SoftStateConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> LandmarkGrid {
        LandmarkGrid::new(3, 5, SimDuration::from_millis(320)).unwrap()
    }

    #[test]
    fn defaults_match_design_doc() {
        let c = SoftStateConfig::builder(grid()).build();
        assert_eq!(c.condense_rate(), 0.25);
        assert_eq!(c.ttl(), SimDuration::from_secs(60));
        assert_eq!(c.curve(), SpaceFillingCurve::Hilbert);
    }

    #[test]
    fn builder_overrides_stick() {
        let c = SoftStateConfig::builder(grid())
            .curve(SpaceFillingCurve::ZOrder)
            .condense_rate(1.0)
            .ttl(SimDuration::from_secs(5))
            .position_resolution_bits(6)
            .build();
        assert_eq!(c.curve(), SpaceFillingCurve::ZOrder);
        assert_eq!(c.condense_rate(), 1.0);
        assert_eq!(c.position_resolution_bits(), 6);
    }

    #[test]
    #[should_panic(expected = "condense rate")]
    fn zero_condense_rate_panics() {
        SoftStateConfig::builder(grid()).condense_rate(0.0);
    }

    #[test]
    #[should_panic(expected = "TTL")]
    fn zero_ttl_panics() {
        SoftStateConfig::builder(grid()).ttl(SimDuration::ZERO);
    }
}
