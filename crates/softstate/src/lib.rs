//! # tao-softstate — global soft-state on the overlay itself
//!
//! The paper's central idea: store *information about the system* — each
//! node's proximity coordinates, and optionally its load — **in the overlay
//! itself**, as soft-state objects whose placement is controlled so that
//! information about physically close nodes is stored logically close
//! together. Nodes then act as rendezvous points for each other.
//!
//! * [`NodeInfo`] / [`SoftStateEntry`] — the published objects: the triple
//!   `<Z, n, p>` of the paper (§5.1) plus a TTL and optional [`LoadStats`]
//!   (§6), with a compact wire encoding,
//! * [`ZoneMap`] — the map of one region (high-order zone): entries indexed
//!   by landmark number, *condensed* into a fraction of the region
//!   (condense rate), expiring by TTL, queried with the Table-1 lookup
//!   procedure (land at the hash position, widen the search window until
//!   candidates are found, rank by full landmark vector),
//! * [`GlobalState`] — all maps of an eCAN overlay: publish a node into the
//!   map of every enclosing high-order zone (≤ log N maps), look up the
//!   closest members of a target zone, and report per-host entry counts
//!   (figure 16's "map entries / node"),
//! * [`pubsub`] — subscriptions over the maps with predicate filtering and
//!   distribution-tree dissemination,
//! * [`MaintenancePolicy`] — reactive / periodic-poll / proactive-departure
//!   repair of the soft-state (§5.2), with staleness accounting.
//!
//! # Example
//!
//! ```
//! use tao_softstate::{GlobalState, SoftStateConfig};
//! use tao_landmark::{LandmarkGrid, SpaceFillingCurve};
//! use tao_util::time::SimDuration;
//!
//! let grid = LandmarkGrid::new(3, 5, SimDuration::from_millis(320)).unwrap();
//! let config = SoftStateConfig::builder(grid)
//!     .condense_rate(0.25)
//!     .ttl(SimDuration::from_secs(60))
//!     .build();
//! let state = GlobalState::new(config);
//! assert_eq!(state.map_count(), 0); // maps appear as nodes publish
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod entry;
mod map;
pub mod pubsub;
mod maintenance;
pub mod prefix;
pub mod ring;
mod store;

pub use config::{SoftStateConfig, SoftStateConfigBuilder};
pub use entry::{LoadStats, NodeInfo, SoftStateEntry};
pub use maintenance::{refresh_round, MaintenancePolicy, MaintenanceReport, RefreshReport};
pub use map::{ZoneKey, ZoneMap};
pub use store::{ConvergenceReport, GlobalState};
