//! Publish/subscribe over the global state (§5.2).
//!
//! "A node specifies the conditions under which it should get notified …
//! when the conditions are triggered, the notifications can be efficiently
//! disseminated to all subscribers through distribution trees embedded in
//! the overlay."
//!
//! [`PubSub`] keeps per-region subscription lists; [`PubSub::publish`]
//! matches an event against them and returns the matched subscriptions;
//! [`distribution_tree`] lays the subscribers out in a bounded-fan-out tree
//! rooted at the publishing host and computes each subscriber's delivery
//! latency and the total message count, so experiments can charge realistic
//! dissemination costs (or drive the `tao-sim` engine directly).

use std::fmt;

use tao_util::det::DetMap;

use tao_overlay::{OverlayNodeId, Zone};
use tao_util::time::SimDuration;
use tao_topology::{NodeIdx, RttOracle};

use crate::entry::{LoadStats, NodeInfo};
use crate::map::ZoneKey;

/// Conditions a subscriber can register interest in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Predicate {
    /// "Notify me when more nodes have joined the zone."
    NodeJoined,
    /// Notify when a node's soft-state is withdrawn or found dead.
    NodeDeparted,
    /// Notify when a zone member reports utilization above the threshold
    /// (§6: "the selected neighbor is handling 80% of its maximum
    /// capacity").
    UtilizationAbove(f64),
    /// Notify on every event in the zone.
    Any,
}

/// An event published into a region's soft-state.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A node joined the region and published its info.
    NodeJoined(NodeInfo),
    /// A node departed (or its entry lapsed).
    NodeDeparted(OverlayNodeId),
    /// A node republished its load statistics.
    LoadChanged {
        /// The reporting node.
        node: OverlayNodeId,
        /// Its fresh load statistics.
        load: LoadStats,
    },
}

impl Event {
    fn matches(&self, predicate: Predicate) -> bool {
        match (self, predicate) {
            (_, Predicate::Any) => true,
            (Event::NodeJoined(_), Predicate::NodeJoined) => true,
            (Event::NodeDeparted(_), Predicate::NodeDeparted) => true,
            (Event::LoadChanged { load, .. }, Predicate::UtilizationAbove(t)) => {
                load.utilization() > t
            }
            _ => false,
        }
    }
}

/// Identifier of a registered subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubscriptionId(u64);

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Subscription {
    id: SubscriptionId,
    subscriber: OverlayNodeId,
    predicate: Predicate,
}

/// The subscription registry: per-region lists of `(subscriber, predicate)`.
///
/// # Example
///
/// ```
/// use tao_softstate::pubsub::{Event, Predicate, PubSub};
/// use tao_overlay::{OverlayNodeId, Zone};
///
/// let mut bus = PubSub::new();
/// let region = Zone::whole(2);
/// bus.subscribe(&region, OverlayNodeId(1), Predicate::NodeDeparted);
/// bus.subscribe(&region, OverlayNodeId(2), Predicate::NodeJoined);
///
/// let hit = bus.publish(&region, &Event::NodeDeparted(OverlayNodeId(9)));
/// assert_eq!(hit, vec![OverlayNodeId(1)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct PubSub {
    subs: DetMap<ZoneKey, Vec<Subscription>>,
    next_id: u64,
}

impl PubSub {
    /// Creates an empty registry.
    pub fn new() -> Self {
        PubSub::default()
    }

    /// Registers `subscriber` for events in `region` matching `predicate`.
    pub fn subscribe(
        &mut self,
        region: &Zone,
        subscriber: OverlayNodeId,
        predicate: Predicate,
    ) -> SubscriptionId {
        let id = SubscriptionId(self.next_id);
        self.next_id += 1;
        self.subs
            .entry(ZoneKey::from_zone(region))
            .or_default()
            .push(Subscription {
                id,
                subscriber,
                predicate,
            });
        id
    }

    /// Cancels a subscription; returns whether it existed.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> bool {
        for list in self.subs.values_mut() {
            let before = list.len();
            list.retain(|s| s.id != id);
            if list.len() != before {
                return true;
            }
        }
        false
    }

    /// Drops all subscriptions held by `subscriber` (e.g. on departure);
    /// returns how many were removed.
    pub fn unsubscribe_all(&mut self, subscriber: OverlayNodeId) -> usize {
        let mut removed = 0;
        for list in self.subs.values_mut() {
            let before = list.len();
            list.retain(|s| s.subscriber != subscriber);
            removed += before - list.len();
        }
        removed
    }

    /// Total registered subscriptions.
    pub fn len(&self) -> usize {
        self.subs.values().map(Vec::len).sum()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Matches `event` against `region`'s subscriptions; returns the
    /// subscribers to notify (deduplicated, sorted).
    pub fn publish(&self, region: &Zone, event: &Event) -> Vec<OverlayNodeId> {
        let Some(list) = self.subs.get(&ZoneKey::from_zone(region)) else {
            return Vec::new();
        };
        let mut hit: Vec<OverlayNodeId> = list
            .iter()
            .filter(|s| event.matches(s.predicate))
            .map(|s| s.subscriber)
            .collect();
        hit.sort();
        hit.dedup();
        hit
    }

    /// Subscribers that are no longer alive per `live` — *orphaned*
    /// subscriptions left behind by crashed nodes. Deduplicated, sorted.
    pub fn orphaned_subscribers(&self, mut live: impl FnMut(OverlayNodeId) -> bool) -> Vec<OverlayNodeId> {
        let mut orphans: Vec<OverlayNodeId> = self
            .subs
            .values()
            .flatten()
            .map(|s| s.subscriber)
            .filter(|&n| !live(n))
            .collect();
        orphans.sort();
        orphans.dedup();
        orphans
    }

    /// The lazy-repair path for subscriptions: drops every subscription
    /// whose subscriber is no longer alive per `live`; returns how many were
    /// removed. After this, [`PubSub::orphaned_subscribers`] with the same
    /// predicate returns an empty list.
    pub fn prune_orphans(&mut self, mut live: impl FnMut(OverlayNodeId) -> bool) -> usize {
        let mut removed = 0;
        for list in self.subs.values_mut() {
            let before = list.len();
            list.retain(|s| live(s.subscriber));
            removed += before - list.len();
        }
        removed
    }
}

/// One subscriber's delivery in a dissemination round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// The notified subscriber.
    pub subscriber: OverlayNodeId,
    /// Accumulated latency from the publishing host along the tree.
    pub latency: SimDuration,
}

/// The cost summary of one dissemination round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dissemination {
    /// Per-subscriber deliveries.
    pub deliveries: Vec<Delivery>,
    /// Total point-to-point messages sent (= number of tree edges).
    pub messages: u64,
}

impl Dissemination {
    /// The slowest delivery, or zero when there are no subscribers.
    pub fn max_latency(&self) -> SimDuration {
        self.deliveries
            .iter()
            .map(|d| d.latency)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

/// Disseminates a notification from the host `root` (an underlay router) to
/// `subscribers` through a fan-out-`k` tree embedded in the overlay: the
/// root notifies up to `k` subscribers, each of which forwards to its own
/// `k` children, and so on. Latencies accumulate along tree paths using
/// `oracle` ground truth (dissemination is charged as messages, not probes).
///
/// # Panics
///
/// Panics if `fanout` is zero.
pub fn distribution_tree(
    root: NodeIdx,
    subscribers: &[(OverlayNodeId, NodeIdx)],
    fanout: usize,
    oracle: &RttOracle,
) -> Dissemination {
    assert!(fanout > 0, "fanout must be at least 1");
    let mut deliveries = Vec::with_capacity(subscribers.len());
    // latencies[i] = accumulated latency at subscriber i.
    let mut latencies: Vec<SimDuration> = Vec::with_capacity(subscribers.len());
    for (i, &(subscriber, underlay)) in subscribers.iter().enumerate() {
        // k-ary heap layout with the root as node 0 and subscriber i as
        // node i+1: the parent of node m is (m-1)/k, so subscriber i's
        // parent is the root for i < k and subscriber i/k - 1 otherwise.
        let (parent_node, parent_latency) = if i < fanout {
            (root, SimDuration::ZERO)
        } else {
            let p = i / fanout - 1;
            (subscribers[p].1, latencies[p])
        };
        let hop = oracle.ground_truth(parent_node, underlay);
        let total = parent_latency + hop;
        latencies.push(total);
        deliveries.push(Delivery {
            subscriber,
            latency: total,
        });
    }
    Dissemination {
        messages: subscribers.len() as u64,
        deliveries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_landmark::{LandmarkNumber, LandmarkVector};

    fn region() -> Zone {
        Zone::whole(2)
    }

    fn joined(id: u32) -> Event {
        Event::NodeJoined(NodeInfo {
            node: OverlayNodeId(id),
            underlay: NodeIdx(id),
            vector: LandmarkVector::from_millis(&[1.0]),
            number: LandmarkNumber::new(0),
            load: None,
        })
    }

    #[test]
    fn predicates_filter_events() {
        let mut bus = PubSub::new();
        bus.subscribe(&region(), OverlayNodeId(1), Predicate::NodeJoined);
        bus.subscribe(&region(), OverlayNodeId(2), Predicate::NodeDeparted);
        bus.subscribe(&region(), OverlayNodeId(3), Predicate::Any);
        assert_eq!(
            bus.publish(&region(), &joined(9)),
            vec![OverlayNodeId(1), OverlayNodeId(3)]
        );
        assert_eq!(
            bus.publish(&region(), &Event::NodeDeparted(OverlayNodeId(9))),
            vec![OverlayNodeId(2), OverlayNodeId(3)]
        );
    }

    #[test]
    fn utilization_threshold_is_respected() {
        let mut bus = PubSub::new();
        bus.subscribe(&region(), OverlayNodeId(1), Predicate::UtilizationAbove(0.8));
        let low = Event::LoadChanged {
            node: OverlayNodeId(5),
            load: LoadStats { capacity: 100.0, current_load: 50.0 },
        };
        let high = Event::LoadChanged {
            node: OverlayNodeId(5),
            load: LoadStats { capacity: 100.0, current_load: 90.0 },
        };
        assert!(bus.publish(&region(), &low).is_empty());
        assert_eq!(bus.publish(&region(), &high), vec![OverlayNodeId(1)]);
    }

    #[test]
    fn events_in_other_regions_do_not_leak() {
        let mut bus = PubSub::new();
        let (left, right) = Zone::whole(2).split(0);
        bus.subscribe(&left, OverlayNodeId(1), Predicate::Any);
        assert!(bus.publish(&right, &joined(2)).is_empty());
        assert_eq!(bus.publish(&left, &joined(2)), vec![OverlayNodeId(1)]);
    }

    #[test]
    fn unsubscribe_variants() {
        let mut bus = PubSub::new();
        let id = bus.subscribe(&region(), OverlayNodeId(1), Predicate::Any);
        bus.subscribe(&region(), OverlayNodeId(1), Predicate::NodeJoined);
        bus.subscribe(&region(), OverlayNodeId(2), Predicate::Any);
        assert_eq!(bus.len(), 3);
        assert!(bus.unsubscribe(id));
        assert!(!bus.unsubscribe(id));
        assert_eq!(bus.unsubscribe_all(OverlayNodeId(1)), 1);
        assert_eq!(bus.len(), 1);
    }

    #[test]
    fn duplicate_matches_are_deduplicated() {
        let mut bus = PubSub::new();
        bus.subscribe(&region(), OverlayNodeId(1), Predicate::Any);
        bus.subscribe(&region(), OverlayNodeId(1), Predicate::NodeJoined);
        assert_eq!(bus.publish(&region(), &joined(2)), vec![OverlayNodeId(1)]);
    }

    mod tree {
        use super::*;
        use tao_topology::{generate_transit_stub, LatencyAssignment, TransitStubParams};

        fn oracle() -> RttOracle {
            let topo = generate_transit_stub(
                &TransitStubParams::tsk_small_mini(),
                LatencyAssignment::manual(),
                77,
            );
            RttOracle::new(topo.graph().clone())
        }

        #[test]
        fn tree_notifies_everyone_once() {
            let oracle = oracle();
            let subs: Vec<(OverlayNodeId, NodeIdx)> = (0..20)
                .map(|i| (OverlayNodeId(i), NodeIdx(i * 7)))
                .collect();
            let d = distribution_tree(NodeIdx(0), &subs, 4, &oracle);
            assert_eq!(d.deliveries.len(), 20);
            assert_eq!(d.messages, 20);
            let mut seen: Vec<OverlayNodeId> =
                d.deliveries.iter().map(|x| x.subscriber).collect();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), 20);
        }

        #[test]
        fn deeper_subscribers_accumulate_latency() {
            let oracle = oracle();
            let subs: Vec<(OverlayNodeId, NodeIdx)> = (0..30)
                .map(|i| (OverlayNodeId(i), NodeIdx(i * 5 + 1)))
                .collect();
            let d = distribution_tree(NodeIdx(0), &subs, 2, &oracle);
            // A leaf in a binary tree of 30 subscribers sits 4+ hops deep;
            // its latency must be at least the max single-hop latency of the
            // first level.
            assert!(d.max_latency() >= d.deliveries[0].latency);
            assert!(d.max_latency() > SimDuration::ZERO);
        }

        #[test]
        fn empty_subscriber_list_is_free() {
            let oracle = oracle();
            let d = distribution_tree(NodeIdx(0), &[], 4, &oracle);
            assert_eq!(d.messages, 0);
            assert_eq!(d.max_latency(), SimDuration::ZERO);
        }
    }
}
