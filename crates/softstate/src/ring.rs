//! Global soft-state on a Chord ring.
//!
//! The appendix's mapping for Chord: "we can simply use the landmark number
//! as the key to store the information of [a] node on a node whose ID is
//! equal to or greater than the landmark number" — i.e. the landmark number,
//! scaled onto the identifier ring, names the *successor* that hosts the
//! record. Locality still holds: nodes with close landmark numbers store
//! their records on the same or ring-adjacent hosts, so one lookup plus a
//! short successor walk collects the physically-close candidate set.

use std::collections::BTreeMap;

use tao_util::det::DetMap;

use tao_landmark::{LandmarkNumber, LandmarkVector};
use tao_overlay::chord::{ChordOverlay, RingId};
use tao_util::time::SimTime;
use tao_topology::NodeIdx;

use crate::config::SoftStateConfig;

/// A Chord node's published soft-state record.
#[derive(Debug, Clone, PartialEq)]
pub struct RingRecord {
    /// The publishing node's ring id.
    pub ring: RingId,
    /// The underlay router it runs on.
    pub underlay: NodeIdx,
    /// Its full landmark vector.
    pub vector: LandmarkVector,
    /// Its landmark number.
    pub number: LandmarkNumber,
}

/// The ring-wide soft-state store: records keyed by their landmark number's
/// position on the identifier ring, hosted by that position's successor.
///
/// # Example
///
/// See the `generality_chord` benchmark binary and the ring tests.
#[derive(Debug, Clone)]
pub struct RingState {
    config: SoftStateConfig,
    /// `(storage key, publisher)` → `(record, expiry)`.
    entries: BTreeMap<(RingId, RingId), (RingRecord, SimTime)>,
}

impl RingState {
    /// Creates an empty store.
    pub fn new(config: SoftStateConfig) -> Self {
        RingState {
            config,
            entries: BTreeMap::new(),
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> &SoftStateConfig {
        &self.config
    }

    /// The ring position a landmark number maps to: its fraction of the
    /// curve scaled onto the 64-bit ring.
    pub fn ring_key(&self, number: LandmarkNumber) -> RingId {
        let fraction = number.as_fraction(self.config.grid().number_bits());
        (fraction * 2f64.powi(64)) as u64
    }

    /// Publishes (or refreshes) a record under its landmark-number key.
    pub fn publish(&mut self, record: RingRecord, now: SimTime) {
        let key = (self.ring_key(record.number), record.ring);
        self.entries.insert(key, (record, now + self.config.ttl()));
    }

    /// Withdraws every record published by `ring` (proactive departure).
    /// Returns how many were removed.
    pub fn remove(&mut self, ring: RingId) -> usize {
        let before = self.entries.len();
        self.entries.retain(|(_, publisher), _| *publisher != ring);
        before - self.entries.len()
    }

    /// Drops lapsed records; returns how many.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, (_, expiry)| now < *expiry);
        before - self.entries.len()
    }

    /// Total stored records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The host responsible for storage key `key` on `ring` (its
    /// successor), or `None` on an empty ring.
    pub fn host_of(&self, key: RingId, ring: &ChordOverlay) -> Option<RingId> {
        ring.successor(key).ok()
    }

    /// The distributed lookup, Chord edition: land on the host (successor
    /// of the query's ring key), collect the records *that host stores*,
    /// and widen along successors until `max` live candidates are found or
    /// `max_hosts` hosts have been consulted. Candidates are ranked by
    /// full landmark-vector distance; the querying node is excluded.
    pub fn lookup_hosted(
        &self,
        query: &RingRecord,
        max: usize,
        max_hosts: usize,
        ring: &ChordOverlay,
        now: SimTime,
    ) -> Vec<RingRecord> {
        let Ok(mut host) = ring.successor(self.ring_key(query.number)) else {
            return Vec::new();
        };
        let mut candidates: Vec<&RingRecord> = Vec::new();
        let mut consulted = 0usize;
        while consulted < max_hosts.max(1) {
            // Records hosted by `host`: keys in (predecessor, host].
            for (&(key, _), (record, expiry)) in &self.entries {
                if now >= *expiry || record.ring == query.ring {
                    continue;
                }
                if ring.successor(key).ok() == Some(host) {
                    candidates.push(record);
                }
            }
            consulted += 1;
            if candidates.len() >= max || ring.len() <= consulted {
                break;
            }
            let Ok(next) = ring.successor(host.wrapping_add(1)) else {
                break;
            };
            host = next;
        }
        candidates.sort_by(|a, b| {
            let da = query.vector.euclidean_ms(&a.vector);
            let db = query.vector.euclidean_ms(&b.vector);
            da.partial_cmp(&db)
                .expect("distances are finite") // tao-lint: allow(no-unwrap-in-lib, reason = "distances are finite")
                .then(a.ring.cmp(&b.ring))
        });
        candidates.dedup_by_key(|r| r.ring);
        candidates.into_iter().take(max).cloned().collect()
    }

    /// Records stored per host (the successor of each record's key) —
    /// the hosting-burden metric on the ring.
    pub fn records_per_host(&self, ring: &ChordOverlay) -> DetMap<RingId, usize> {
        let mut out: DetMap<RingId, usize> = ring.node_ids().map(|id| (id, 0)).collect();
        for &(key, _) in self.entries.keys() {
            if let Ok(host) = ring.successor(key) {
                *out.entry(host).or_insert(0) += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_landmark::LandmarkGrid;
    use tao_overlay::chord::RandomFingerSelector;
    use tao_util::time::SimDuration;

    fn config() -> SoftStateConfig {
        let grid = LandmarkGrid::new(3, 5, SimDuration::from_millis(320)).expect("valid grid");
        SoftStateConfig::builder(grid).build()
    }

    fn record(ring: RingId, millis: [f64; 3], cfg: &SoftStateConfig) -> RingRecord {
        let vector = LandmarkVector::from_millis(&millis);
        let number = cfg.grid().landmark_number(&vector, cfg.curve());
        RingRecord {
            ring,
            underlay: NodeIdx(ring as u32),
            vector,
            number,
        }
    }

    fn small_ring(n: u64) -> ChordOverlay {
        let mut ring = ChordOverlay::new();
        for i in 0..n {
            ring.join(NodeIdx(i as u32), i * (u64::MAX / n));
        }
        ring.build_fingers(&mut RandomFingerSelector::new(1));
        ring
    }

    #[test]
    fn ring_key_preserves_number_order() {
        let s = RingState::new(config());
        let a = s.ring_key(LandmarkNumber::new(100));
        let b = s.ring_key(LandmarkNumber::new(200));
        let c = s.ring_key(LandmarkNumber::new(20_000));
        assert!(a < b && b < c);
    }

    #[test]
    fn publish_lookup_finds_vector_nearest() {
        let cfg = config();
        let mut s = RingState::new(cfg);
        let ring = small_ring(16);
        let near = record(1, [10.0, 40.0, 90.0], &cfg);
        let far = record(2, [300.0, 310.0, 305.0], &cfg);
        s.publish(near.clone(), SimTime::ORIGIN);
        s.publish(far, SimTime::ORIGIN);
        let query = record(99, [12.0, 41.0, 88.0], &cfg);
        let found = s.lookup_hosted(&query, 1, 16, &ring, SimTime::ORIGIN);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].ring, 1);
    }

    #[test]
    fn lookup_excludes_the_querying_node_and_expired() {
        let cfg = config();
        let mut s = RingState::new(cfg);
        let ring = small_ring(8);
        let mine = record(5, [10.0, 40.0, 90.0], &cfg);
        s.publish(mine.clone(), SimTime::ORIGIN);
        let found = s.lookup_hosted(&mine, 5, 8, &ring, SimTime::ORIGIN);
        assert!(found.is_empty(), "own record must not come back");
        let other = record(6, [10.0, 40.0, 90.0], &cfg);
        s.publish(other, SimTime::ORIGIN);
        let later = SimTime::ORIGIN + cfg.ttl() + SimDuration::from_secs(1);
        assert!(s.lookup_hosted(&mine, 5, 8, &ring, later).is_empty());
        assert_eq!(s.expire(later), 2);
    }

    #[test]
    fn widening_reaches_records_on_later_hosts() {
        let cfg = config();
        let mut s = RingState::new(cfg);
        let ring = small_ring(8);
        // Two records with very different numbers: they land on different
        // hosts; a wide lookup still collects both.
        s.publish(record(1, [5.0, 5.0, 5.0], &cfg), SimTime::ORIGIN);
        s.publish(record(2, [300.0, 300.0, 300.0], &cfg), SimTime::ORIGIN);
        let query = record(99, [5.0, 6.0, 7.0], &cfg);
        let narrow = s.lookup_hosted(&query, 2, 1, &ring, SimTime::ORIGIN);
        let wide = s.lookup_hosted(&query, 2, 8, &ring, SimTime::ORIGIN);
        assert!(wide.len() >= narrow.len());
        assert_eq!(wide.len(), 2);
    }

    #[test]
    fn remove_withdraws_a_publishers_records() {
        let cfg = config();
        let mut s = RingState::new(cfg);
        s.publish(record(1, [10.0, 20.0, 30.0], &cfg), SimTime::ORIGIN);
        s.publish(record(2, [40.0, 50.0, 60.0], &cfg), SimTime::ORIGIN);
        assert_eq!(s.remove(1), 1);
        assert_eq!(s.remove(1), 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn hosting_burden_sums_to_total() {
        let cfg = config();
        let mut s = RingState::new(cfg);
        let ring = small_ring(8);
        for i in 0..20u64 {
            s.publish(record(i + 100, [i as f64 * 12.0, 50.0, 90.0], &cfg), SimTime::ORIGIN);
        }
        let hosts = s.records_per_host(&ring);
        assert_eq!(hosts.values().sum::<usize>(), 20);
        assert_eq!(hosts.len(), 8, "every ring node is accounted for");
    }
}
