//! Per-region proximity maps.
//!
//! Each region (high-order zone) of the overlay has one *map* containing
//! proximity information about all nodes in the region. The map is stored
//! in a *condensed* sub-box of the region (the condense rate is the ratio of
//! map size to hosting region size, §5.1), and entries are placed inside it
//! by hashing their landmark number through a space-filling curve — so
//! information about physically close nodes lands on the same or adjacent
//! hosts.

use std::collections::BTreeMap;

use tao_util::det::DetMap;

use tao_landmark::{region_position, LandmarkNumber, LandmarkVector};
use tao_overlay::{CanOverlay, OverlayNodeId, Point, Zone};
use tao_sim::SimTime;

use crate::config::SoftStateConfig;
use crate::entry::{NodeInfo, SoftStateEntry};

/// Hashable identity of a dyadic zone (all CAN zones are dyadic, so the
/// fixed-point encoding below is exact).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZoneKey(Vec<(u64, u64)>);

impl ZoneKey {
    /// Creates the key for `zone`.
    pub fn from_zone(zone: &Zone) -> Self {
        const SCALE: f64 = (1u64 << 32) as f64;
        ZoneKey(
            (0..zone.dims())
                .map(|a| ((zone.lo(a) * SCALE) as u64, (zone.hi(a) * SCALE) as u64))
                .collect(),
        )
    }
}

/// The map of one region.
///
/// # Example
///
/// ```
/// use tao_softstate::{SoftStateConfig, ZoneMap, NodeInfo};
/// use tao_landmark::{LandmarkGrid, LandmarkVector, SpaceFillingCurve};
/// use tao_overlay::{OverlayNodeId, Zone};
/// use tao_sim::{SimDuration, SimTime};
/// use tao_topology::NodeIdx;
///
/// let grid = LandmarkGrid::new(3, 5, SimDuration::from_millis(320)).unwrap();
/// let config = SoftStateConfig::builder(grid).build();
/// let mut map = ZoneMap::new(Zone::whole(2), &config);
///
/// let vector = LandmarkVector::from_millis(&[10.0, 40.0, 90.0]);
/// let number = config.grid().landmark_number(&vector, config.curve());
/// map.publish(
///     NodeInfo { node: OverlayNodeId(0), underlay: NodeIdx(0), vector: vector.clone(),
///                number, load: None },
///     SimTime::ORIGIN,
///     &config,
/// );
/// let found = map.lookup(&vector, number, 5, 32, SimTime::ORIGIN);
/// assert_eq!(found.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ZoneMap {
    region: Zone,
    condensed: Zone,
    /// Entries keyed by landmark number (then owner id for determinism).
    entries: BTreeMap<(u128, OverlayNodeId), SoftStateEntry>,
    /// Secondary index: each node's current landmark number, enforcing one
    /// entry per node per map even when its coordinates change.
    by_node: DetMap<OverlayNodeId, u128>,
}

impl ZoneMap {
    /// Creates an empty map for `region`, condensing it per the config.
    pub fn new(region: Zone, config: &SoftStateConfig) -> Self {
        let condensed = condensed_box(&region, config.condense_rate());
        ZoneMap {
            region,
            condensed,
            entries: BTreeMap::new(),
            by_node: DetMap::new(),
        }
    }

    /// The region this map covers.
    pub fn region(&self) -> &Zone {
        &self.region
    }

    /// The sub-box of the region that hosts the map's objects.
    pub fn condensed(&self) -> &Zone {
        &self.condensed
    }

    /// Number of stored entries (including not-yet-expired stale ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The position within the region at which information keyed by
    /// `number` is stored — the paper's `p' = h(p, dp, dz, Z)`.
    pub fn position_for(&self, number: LandmarkNumber, config: &SoftStateConfig) -> Point {
        let normalised = region_position(
            number,
            config.grid().number_bits(),
            self.region.dims(),
            config.position_resolution_bits(),
            config.curve(),
        );
        // Scale the normalised position into the condensed box.
        Point::clamped(
            (0..self.condensed.dims())
                .map(|a| self.condensed.lo(a) + normalised[a] * self.condensed.extent(a))
                .collect(),
        )
    }

    /// Publishes (or re-publishes) `info`, stamping a fresh TTL. Returns the
    /// storage position.
    pub fn publish(&mut self, info: NodeInfo, now: SimTime, config: &SoftStateConfig) -> Point {
        // A node's coordinates can change between publishes; drop the entry
        // under its previous landmark number first.
        if let Some(&old) = self.by_node.get(&info.node) {
            if old != info.number.value() {
                self.entries.remove(&(old, info.node));
            }
        }
        let position = self.position_for(info.number, config);
        let key = (info.number.value(), info.node);
        self.by_node.insert(info.node, info.number.value());
        self.entries.insert(
            key,
            SoftStateEntry {
                info,
                position: position.clone(),
                expires_at: now + config.ttl(),
            },
        );
        position
    }

    /// Removes the entry of `node`, returning whether one existed.
    pub fn remove(&mut self, node: OverlayNodeId) -> bool {
        match self.by_node.remove(&node) {
            Some(number) => self.entries.remove(&(number, node)).is_some(),
            None => false,
        }
    }

    /// Drops entries that have lapsed by `now`; returns how many.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        let by_node = &mut self.by_node;
        self.entries.retain(|_, e| {
            let live = e.is_live(now);
            if !live {
                by_node.remove(&e.info.node);
            }
            live
        });
        before - self.entries.len()
    }

    /// Re-stamps the TTL of `node`'s entry; returns whether it existed.
    pub fn refresh(&mut self, node: OverlayNodeId, now: SimTime, config: &SoftStateConfig) -> bool {
        let Some(&number) = self.by_node.get(&node) else {
            return false;
        };
        match self.entries.get_mut(&(number, node)) {
            Some(e) => {
                e.refresh(now, config.ttl());
                true
            }
            None => false,
        }
    }

    /// The Table-1 lookup: starting from the query's landmark number, scan
    /// outward along the curve (up to `overscan` entries per side — the
    /// paper's "TTL to search outside y's map content range"), rank the live
    /// candidates by full-landmark-vector distance, and return up to `max`.
    pub fn lookup(
        &self,
        query: &LandmarkVector,
        number: LandmarkNumber,
        max: usize,
        overscan: usize,
        now: SimTime,
    ) -> Vec<NodeInfo> {
        let pivot = (number.value(), OverlayNodeId(0));
        let mut candidates: Vec<&SoftStateEntry> = Vec::new();
        candidates.extend(
            self.entries
                .range(pivot..)
                .take(overscan)
                .map(|(_, e)| e)
                .filter(|e| e.is_live(now)),
        );
        candidates.extend(
            self.entries
                .range(..pivot)
                .rev()
                .take(overscan)
                .map(|(_, e)| e)
                .filter(|e| e.is_live(now)),
        );
        candidates.sort_by(|a, b| {
            let da = query.euclidean_ms(&a.info.vector);
            let db = query.euclidean_ms(&b.info.vector);
            da.partial_cmp(&db)
                .expect("distances are finite") // tao-lint: allow(no-unwrap-in-lib, reason = "distances are finite")
                .then(a.info.node.cmp(&b.info.node))
        });
        candidates
            .into_iter()
            .take(max)
            .map(|e| e.info.clone())
            .collect()
    }

    /// Iterates over live entries.
    pub fn live_entries(&self, now: SimTime) -> impl Iterator<Item = &SoftStateEntry> {
        self.entries.values().filter(move |e| e.is_live(now))
    }

    /// Iterates over all entries, live or stale.
    pub fn entries(&self) -> impl Iterator<Item = &SoftStateEntry> {
        self.entries.values()
    }

    /// Counts this map's entries per hosting overlay node (the owner of
    /// each entry's position in `can`).
    pub fn entries_per_host(&self, can: &CanOverlay) -> DetMap<OverlayNodeId, usize> {
        let mut hosts = DetMap::new();
        for e in self.entries.values() {
            *hosts.entry(can.owner(&e.position)).or_insert(0) += 1;
        }
        hosts
    }
}

/// The sub-box of `region` holding its map: per-axis extents scaled by
/// `rate^(1/d)` so the volume ratio equals the condense rate, anchored at
/// the region's lower corner (the grid "owned by a" in the paper's fig. 9).
fn condensed_box(region: &Zone, rate: f64) -> Zone {
    debug_assert!(rate > 0.0 && rate <= 1.0);
    if rate == 1.0 {
        return region.clone();
    }
    let d = region.dims();
    let scale = rate.powf(1.0 / d as f64);
    let lo: Vec<f64> = (0..d).map(|a| region.lo(a)).collect();
    let hi: Vec<f64> = (0..d)
        .map(|a| region.lo(a) + region.extent(a) * scale)
        .collect();
    Zone::from_bounds(lo, hi).expect("condensed box is valid") // tao-lint: allow(no-unwrap-in-lib, reason = "condensed box is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_landmark::LandmarkGrid;
    use tao_sim::SimDuration;
    use tao_topology::NodeIdx;

    fn config() -> SoftStateConfig {
        let grid = LandmarkGrid::new(3, 5, SimDuration::from_millis(320)).unwrap();
        SoftStateConfig::builder(grid).build()
    }

    fn info(id: u32, millis: [f64; 3], config: &SoftStateConfig) -> NodeInfo {
        let vector = LandmarkVector::from_millis(&millis);
        let number = config.grid().landmark_number(&vector, config.curve());
        NodeInfo {
            node: OverlayNodeId(id),
            underlay: NodeIdx(id),
            vector,
            number,
            load: None,
        }
    }

    #[test]
    fn zone_keys_distinguish_zones_exactly() {
        let whole = Zone::whole(2);
        let (l, r) = whole.split(0);
        assert_eq!(ZoneKey::from_zone(&l), ZoneKey::from_zone(&l.clone()));
        assert_ne!(ZoneKey::from_zone(&l), ZoneKey::from_zone(&r));
        assert_ne!(ZoneKey::from_zone(&l), ZoneKey::from_zone(&whole));
    }

    #[test]
    fn condensed_box_has_rate_volume() {
        let region = Zone::whole(2);
        let c = condensed_box(&region, 0.25);
        assert!((c.volume() - 0.25).abs() < 1e-9);
        assert!(region.contains_zone(&c));
        assert_eq!(condensed_box(&region, 1.0), region);
    }

    #[test]
    fn positions_stay_inside_the_condensed_box() {
        let cfg = config();
        let map = ZoneMap::new(Zone::whole(2), &cfg);
        for raw in [0u128, 99, 5_000, 32_767] {
            let p = map.position_for(LandmarkNumber::new(raw), &cfg);
            assert!(
                map.condensed().contains(&p),
                "position {p} escaped the condensed box"
            );
        }
    }

    #[test]
    fn close_numbers_store_close_positions() {
        let cfg = config();
        let map = ZoneMap::new(Zone::whole(2), &cfg);
        let a = map.position_for(LandmarkNumber::new(1_000), &cfg);
        let b = map.position_for(LandmarkNumber::new(1_001), &cfg);
        let far = map.position_for(LandmarkNumber::new(20_000), &cfg);
        assert!(a.torus_distance(&b) <= a.torus_distance(&far));
    }

    #[test]
    fn publish_lookup_returns_nearest_by_vector() {
        let cfg = config();
        let mut map = ZoneMap::new(Zone::whole(2), &cfg);
        let near = info(1, [10.0, 40.0, 90.0], &cfg);
        let mid = info(2, [30.0, 60.0, 110.0], &cfg);
        let far = info(3, [300.0, 310.0, 305.0], &cfg);
        for i in [&near, &mid, &far] {
            map.publish(i.clone(), SimTime::ORIGIN, &cfg);
        }
        let query = LandmarkVector::from_millis(&[12.0, 41.0, 88.0]);
        let qn = cfg.grid().landmark_number(&query, cfg.curve());
        let found = map.lookup(&query, qn, 2, 32, SimTime::ORIGIN);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].node, OverlayNodeId(1));
        assert_eq!(found[1].node, OverlayNodeId(2));
    }

    #[test]
    fn expired_entries_disappear_from_lookups() {
        let cfg = config();
        let mut map = ZoneMap::new(Zone::whole(2), &cfg);
        let i = info(1, [10.0, 40.0, 90.0], &cfg);
        map.publish(i.clone(), SimTime::ORIGIN, &cfg);
        let after_ttl = SimTime::ORIGIN + cfg.ttl() + SimDuration::from_micros(1);
        assert!(map
            .lookup(&i.vector, i.number, 5, 32, after_ttl)
            .is_empty());
        assert_eq!(map.expire(after_ttl), 1);
        assert!(map.is_empty());
    }

    #[test]
    fn refresh_extends_lifetime() {
        let cfg = config();
        let mut map = ZoneMap::new(Zone::whole(2), &cfg);
        let i = info(1, [10.0, 40.0, 90.0], &cfg);
        map.publish(i.clone(), SimTime::ORIGIN, &cfg);
        let half = SimTime::ORIGIN + cfg.ttl() / 2;
        assert!(map.refresh(OverlayNodeId(1), half, &cfg));
        let past_original = SimTime::ORIGIN + cfg.ttl() + SimDuration::from_secs(1);
        assert_eq!(map.lookup(&i.vector, i.number, 5, 32, past_original).len(), 1);
        assert!(!map.refresh(OverlayNodeId(9), half, &cfg));
    }

    #[test]
    fn remove_deletes_all_entries_of_a_node() {
        let cfg = config();
        let mut map = ZoneMap::new(Zone::whole(2), &cfg);
        map.publish(info(1, [10.0, 40.0, 90.0], &cfg), SimTime::ORIGIN, &cfg);
        assert!(map.remove(OverlayNodeId(1)));
        assert!(!map.remove(OverlayNodeId(1)));
        assert!(map.is_empty());
    }

    #[test]
    fn overscan_bounds_the_search_window() {
        let cfg = config();
        let mut map = ZoneMap::new(Zone::whole(2), &cfg);
        // Publish 20 nodes spread across the landmark space.
        for i in 0..20u32 {
            let base = 10.0 + i as f64 * 15.0;
            map.publish(
                info(i, [base, base + 5.0, base + 10.0], &cfg),
                SimTime::ORIGIN,
                &cfg,
            );
        }
        let query = LandmarkVector::from_millis(&[10.0, 15.0, 20.0]);
        let qn = cfg.grid().landmark_number(&query, cfg.curve());
        // overscan=1 examines at most 2 entries total.
        let narrow = map.lookup(&query, qn, 10, 1, SimTime::ORIGIN);
        assert!(narrow.len() <= 2);
        let wide = map.lookup(&query, qn, 10, 32, SimTime::ORIGIN);
        assert_eq!(wide.len(), 10);
    }

    #[test]
    fn republish_updates_in_place() {
        let cfg = config();
        let mut map = ZoneMap::new(Zone::whole(2), &cfg);
        let i = info(1, [10.0, 40.0, 90.0], &cfg);
        map.publish(i.clone(), SimTime::ORIGIN, &cfg);
        map.publish(i, SimTime::ORIGIN + SimDuration::from_secs(1), &cfg);
        assert_eq!(map.len(), 1, "same node re-publishing must not duplicate");
    }
}
