//! Per-region proximity maps.
//!
//! Each region (high-order zone) of the overlay has one *map* containing
//! proximity information about all nodes in the region. The map is stored
//! in a *condensed* sub-box of the region (the condense rate is the ratio of
//! map size to hosting region size, §5.1), and entries are placed inside it
//! by hashing their landmark number through a space-filling curve — so
//! information about physically close nodes lands on the same or adjacent
//! hosts.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::ops::Bound;

use tao_util::det::DetMap;

use tao_landmark::{region_position, LandmarkNumber, LandmarkVector};
use tao_overlay::{CanOverlay, OverlayNodeId, Point, Zone};
use tao_util::time::SimTime;

use crate::config::SoftStateConfig;
use crate::entry::{NodeInfo, SoftStateEntry};

/// Hashable identity of a dyadic zone (all CAN zones are dyadic, so the
/// fixed-point encoding below is exact).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZoneKey(Vec<(u64, u64)>);

impl ZoneKey {
    /// Creates the key for `zone`.
    pub fn from_zone(zone: &Zone) -> Self {
        const SCALE: f64 = (1u64 << 32) as f64;
        ZoneKey(
            (0..zone.dims())
                .map(|a| ((zone.lo(a) * SCALE) as u64, (zone.hi(a) * SCALE) as u64))
                .collect(),
        )
    }
}

/// The map of one region.
///
/// # Example
///
/// ```
/// use tao_softstate::{SoftStateConfig, ZoneMap, NodeInfo};
/// use tao_landmark::{LandmarkGrid, LandmarkVector, SpaceFillingCurve};
/// use tao_overlay::{OverlayNodeId, Zone};
/// use tao_util::time::{SimDuration, SimTime};
/// use tao_topology::NodeIdx;
///
/// let grid = LandmarkGrid::new(3, 5, SimDuration::from_millis(320)).unwrap();
/// let config = SoftStateConfig::builder(grid).build();
/// let mut map = ZoneMap::new(Zone::whole(2), &config);
///
/// let vector = LandmarkVector::from_millis(&[10.0, 40.0, 90.0]);
/// let number = config.grid().landmark_number(&vector, config.curve());
/// map.publish(
///     NodeInfo { node: OverlayNodeId(0), underlay: NodeIdx(0), vector: vector.clone(),
///                number, load: None },
///     SimTime::ORIGIN,
///     &config,
/// );
/// let found = map.lookup(&vector, number, 5, 32, SimTime::ORIGIN);
/// assert_eq!(found.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ZoneMap {
    region: Zone,
    condensed: Zone,
    /// Entries keyed by landmark number (then owner id for determinism).
    entries: BTreeMap<(u128, OverlayNodeId), SoftStateEntry>,
    /// Secondary index: each node's current landmark number, enforcing one
    /// entry per node per map even when its coordinates change.
    by_node: DetMap<OverlayNodeId, u128>,
    /// Spatial index: entries keyed by the Morton code of their storage
    /// position (then their `entries` key), so "entries hosted inside this
    /// CAN zone" is a handful of contiguous range scans instead of an
    /// owner lookup per entry — the hot path of the hosted lookup.
    by_position: BTreeMap<(u128, u128, OverlayNodeId), ()>,
    /// Expiry wheel: `(expires_at, entry key)` stamps in a lazy min-heap.
    /// Refreshes push a new stamp and leave the old one to be skipped, so
    /// `expire` pops only lapsed stamps instead of scanning every entry.
    wheel: BinaryHeap<Reverse<(SimTime, u128, OverlayNodeId)>>,
    /// Morton bits per axis for `by_position`.
    pos_bits: u32,
}

impl ZoneMap {
    /// Creates an empty map for `region`, condensing it per the config.
    pub fn new(region: Zone, config: &SoftStateConfig) -> Self {
        let condensed = condensed_box(&region, config.condense_rate());
        let pos_bits = ((128 / region.dims().max(1)) as u32).min(32);
        ZoneMap {
            region,
            condensed,
            entries: BTreeMap::new(),
            by_node: DetMap::new(),
            by_position: BTreeMap::new(),
            wheel: BinaryHeap::new(),
            pos_bits,
        }
    }

    /// The region this map covers.
    pub fn region(&self) -> &Zone {
        &self.region
    }

    /// The sub-box of the region that hosts the map's objects.
    pub fn condensed(&self) -> &Zone {
        &self.condensed
    }

    /// Number of stored entries (including not-yet-expired stale ones).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The position within the region at which information keyed by
    /// `number` is stored — the paper's `p' = h(p, dp, dz, Z)`.
    pub fn position_for(&self, number: LandmarkNumber, config: &SoftStateConfig) -> Point {
        let normalised = region_position(
            number,
            config.grid().number_bits(),
            self.region.dims(),
            config.position_resolution_bits(),
            config.curve(),
        );
        // Scale the normalised position into the condensed box.
        Point::clamped(
            (0..self.condensed.dims())
                .map(|a| self.condensed.lo(a) + normalised[a] * self.condensed.extent(a))
                .collect(),
        )
    }

    /// Publishes (or re-publishes) `info`, stamping a fresh TTL. Returns the
    /// storage position.
    pub fn publish(&mut self, info: NodeInfo, now: SimTime, config: &SoftStateConfig) -> Point {
        // A node's coordinates can change between publishes; drop the entry
        // under its previous landmark number first.
        if let Some(&old) = self.by_node.get(&info.node) {
            if old != info.number.value() {
                self.drop_entry(old, info.node);
            }
        }
        let position = self.position_for(info.number, config);
        let key = (info.number.value(), info.node);
        let expires_at = now + config.ttl();
        self.by_node.insert(info.node, info.number.value());
        self.by_position
            .insert((self.position_code(&position), key.0, key.1), ());
        self.wheel.push(Reverse((expires_at, key.0, key.1)));
        self.entries.insert(
            key,
            SoftStateEntry {
                info,
                position: position.clone(),
                expires_at,
            },
        );
        position
    }

    /// Removes `(number, node)` from `entries` and `by_position` (not
    /// `by_node`; callers manage that).
    fn drop_entry(&mut self, number: u128, node: OverlayNodeId) -> bool {
        match self.entries.remove(&(number, node)) {
            Some(e) => {
                self.by_position
                    .remove(&(self.position_code(&e.position), number, node));
                true
            }
            None => false,
        }
    }

    /// Removes the entry of `node`, returning whether one existed.
    pub fn remove(&mut self, node: OverlayNodeId) -> bool {
        match self.by_node.remove(&node) {
            Some(number) => self.drop_entry(number, node),
            None => false,
        }
    }

    /// Drops entries that have lapsed by `now`; returns how many.
    ///
    /// Runs off the expiry wheel: only stamps at or before `now` are
    /// popped, so a sweep over a map where nothing has lapsed is O(1)
    /// instead of a full scan. Stamps left behind by refreshes or removals
    /// no longer match their entry's current TTL and are skipped.
    pub fn expire(&mut self, now: SimTime) -> usize {
        let mut dropped = 0;
        while let Some(&Reverse((at, number, node))) = self.wheel.peek() {
            if at > now {
                break;
            }
            self.wheel.pop();
            let lapsed = self
                .entries
                .get(&(number, node))
                .is_some_and(|e| e.expires_at == at);
            if lapsed {
                self.drop_entry(number, node);
                self.by_node.remove(&node);
                dropped += 1;
            }
        }
        dropped
    }

    /// Scan-based implementation of [`ZoneMap::expire`]: visits every
    /// entry. Kept as the benchmark "before" kernel for the expiry wheel;
    /// produces the same result.
    pub fn expire_scan(&mut self, now: SimTime) -> usize {
        let lapsed: Vec<(u128, OverlayNodeId)> = self
            .entries
            .iter()
            .filter(|(_, e)| !e.is_live(now))
            .map(|(&k, _)| k)
            .collect();
        for &(number, node) in &lapsed {
            self.drop_entry(number, node);
            self.by_node.remove(&node);
        }
        lapsed.len()
    }

    /// Re-stamps the TTL of `node`'s entry; returns whether it existed.
    pub fn refresh(&mut self, node: OverlayNodeId, now: SimTime, config: &SoftStateConfig) -> bool {
        let Some(&number) = self.by_node.get(&node) else {
            return false;
        };
        match self.entries.get_mut(&(number, node)) {
            Some(e) => {
                e.refresh(now, config.ttl());
                let expires_at = e.expires_at;
                self.wheel.push(Reverse((expires_at, number, node)));
                true
            }
            None => false,
        }
    }

    /// The Table-1 lookup: starting from the query's landmark number, scan
    /// outward along the curve (up to `overscan` entries per side — the
    /// paper's "TTL to search outside y's map content range"), rank the live
    /// candidates by full-landmark-vector distance, and return up to `max`.
    pub fn lookup(
        &self,
        query: &LandmarkVector,
        number: LandmarkNumber,
        max: usize,
        overscan: usize,
        now: SimTime,
    ) -> Vec<NodeInfo> {
        let pivot = (number.value(), OverlayNodeId(0));
        let mut candidates: Vec<&SoftStateEntry> = Vec::new();
        candidates.extend(
            self.entries
                .range(pivot..)
                .take(overscan)
                .map(|(_, e)| e)
                .filter(|e| e.is_live(now)),
        );
        candidates.extend(
            self.entries
                .range(..pivot)
                .rev()
                .take(overscan)
                .map(|(_, e)| e)
                .filter(|e| e.is_live(now)),
        );
        candidates.sort_by(|a, b| {
            let da = query.euclidean_ms(&a.info.vector);
            let db = query.euclidean_ms(&b.info.vector);
            da.partial_cmp(&db)
                .expect("distances are finite") // tao-lint: allow(no-unwrap-in-lib, reason = "distances are finite")
                .then(a.info.node.cmp(&b.info.node))
        });
        candidates
            .into_iter()
            .take(max)
            .map(|e| e.info.clone())
            .collect()
    }

    /// Iterates over live entries.
    // tao-lint: allow(panic-reachability, reason = "entry liveness is pure TTL arithmetic; the panic edge is the approximate name-match against the overlay's is_live")
    pub fn live_entries(&self, now: SimTime) -> impl Iterator<Item = &SoftStateEntry> {
        self.entries.values().filter(move |e| e.is_live(now))
    }

    /// The live entries whose storage position lies inside `zone`.
    ///
    /// For dyadic zones (every CAN zone) this is a few contiguous range
    /// scans of the Morton position index; other shapes fall back to a
    /// filtered full scan. Both paths agree with
    /// `zone.contains(&entry.position)` exactly.
    pub fn live_entries_in(&self, zone: &Zone, now: SimTime) -> Vec<&SoftStateEntry> {
        match self.morton_ranges(zone) {
            Some(ranges) => {
                let mut out = Vec::new();
                for (start, end) in ranges {
                    let lower = Bound::Included((start, 0u128, OverlayNodeId(0)));
                    let upper = match end {
                        Some(e) => Bound::Excluded((e, 0u128, OverlayNodeId(0))),
                        None => Bound::Unbounded,
                    };
                    for (&(_, number, node), ()) in self.by_position.range((lower, upper)) {
                        if let Some(e) = self.entries.get(&(number, node)) {
                            if e.is_live(now) {
                                out.push(e);
                            }
                        }
                    }
                }
                out
            }
            None => self
                .live_entries(now)
                .filter(|e| zone.contains(&e.position))
                .collect(),
        }
    }

    /// The Morton code of a storage position: per-axis `floor(x * 2^bits)`
    /// interleaved. Quantisation classifies positions against dyadic zone
    /// bounds of level ≤ `pos_bits` exactly.
    fn position_code(&self, p: &Point) -> u128 {
        let d = self.region.dims();
        let scale = (1u64 << self.pos_bits) as f64;
        let cells = 1u64 << self.pos_bits;
        let mut code = 0u128;
        for a in 0..d {
            let q = ((p.coord(a) * scale) as u64).min(cells - 1);
            code |= spread(q, d, self.pos_bits) << a;
        }
        code
    }

    /// Decomposes `zone` into aligned-cube Morton ranges, or `None` when
    /// its bounds are not dyadic of level ≤ `pos_bits` (fall back to a
    /// scan). `(start, None)` means "to the end of the keyspace".
    fn morton_ranges(&self, zone: &Zone) -> Option<Vec<(u128, Option<u128>)>> {
        let d = self.region.dims();
        if zone.dims() != d {
            return None;
        }
        let bits = self.pos_bits;
        let mut levels = Vec::with_capacity(d);
        let mut max_level = 0u32;
        for a in 0..d {
            let ext = zone.extent(a);
            if !(ext > 0.0 && ext <= 1.0) {
                return None;
            }
            let l = -ext.log2();
            if l.fract() != 0.0 || l < 0.0 || l > bits as f64 {
                return None;
            }
            // Dyadic intervals are aligned to their own width.
            if (zone.lo(a) / ext).fract() != 0.0 {
                return None;
            }
            let l = l as u32;
            max_level = max_level.max(l);
            levels.push(l);
        }
        // Cover the box with cubes of side 2^-max_level: the per-axis
        // cartesian product of sub-offsets. CAN zones are balanced (axis
        // levels within one of each other), so this is at most 2^(d-1)
        // cubes; cap the blow-up for arbitrary callers.
        let steps: Vec<u64> = levels.iter().map(|&l| 1u64 << (max_level - l)).collect();
        let total: u64 = steps.iter().product();
        if total > 1 << 10 {
            return None;
        }
        let span_shift = (bits - max_level) as usize * d;
        let mut ranges = Vec::with_capacity(total as usize);
        for cube in 0..total {
            let mut base = 0u128;
            let mut rem = cube;
            for a in 0..d {
                let offset = rem % steps[a];
                rem /= steps[a];
                // zone.lo quantises exactly: level ≤ bits and aligned.
                let q = (zone.lo(a) * (1u64 << bits) as f64) as u64
                    + (offset << (bits - max_level));
                base |= spread(q, d, bits) << a;
            }
            let end = if span_shift >= 128 {
                None
            } else {
                (1u128 << span_shift).checked_add(base)
            };
            ranges.push((base, end));
        }
        Some(ranges)
    }

    /// Iterates over all entries, live or stale.
    pub fn entries(&self) -> impl Iterator<Item = &SoftStateEntry> {
        self.entries.values()
    }

    /// Counts this map's entries per hosting overlay node (the owner of
    /// each entry's position in `can`).
    pub fn entries_per_host(&self, can: &CanOverlay) -> DetMap<OverlayNodeId, usize> {
        let mut hosts = DetMap::new();
        for e in self.entries.values() {
            *hosts.entry(can.owner(&e.position)).or_insert(0) += 1;
        }
        hosts
    }
}

/// Spreads the low `bits` bits of `v` so bit `j` lands at position
/// `j * dims` — one axis's lane of a Morton code.
fn spread(v: u64, dims: usize, bits: u32) -> u128 {
    let mut out = 0u128;
    for j in 0..bits {
        if (v >> j) & 1 == 1 {
            out |= 1u128 << (j as usize * dims);
        }
    }
    out
}

/// The sub-box of `region` holding its map: per-axis extents scaled by
/// `rate^(1/d)` so the volume ratio equals the condense rate, anchored at
/// the region's lower corner (the grid "owned by a" in the paper's fig. 9).
fn condensed_box(region: &Zone, rate: f64) -> Zone {
    debug_assert!(rate > 0.0 && rate <= 1.0);
    if rate == 1.0 {
        return region.clone();
    }
    let d = region.dims();
    let scale = rate.powf(1.0 / d as f64);
    let lo: Vec<f64> = (0..d).map(|a| region.lo(a)).collect();
    let hi: Vec<f64> = (0..d)
        .map(|a| region.lo(a) + region.extent(a) * scale)
        .collect();
    Zone::from_bounds(lo, hi).expect("condensed box is valid") // tao-lint: allow(no-unwrap-in-lib, reason = "condensed box is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tao_landmark::LandmarkGrid;
    use tao_util::time::SimDuration;
    use tao_topology::NodeIdx;

    fn config() -> SoftStateConfig {
        let grid = LandmarkGrid::new(3, 5, SimDuration::from_millis(320)).unwrap();
        SoftStateConfig::builder(grid).build()
    }

    fn info(id: u32, millis: [f64; 3], config: &SoftStateConfig) -> NodeInfo {
        let vector = LandmarkVector::from_millis(&millis);
        let number = config.grid().landmark_number(&vector, config.curve());
        NodeInfo {
            node: OverlayNodeId(id),
            underlay: NodeIdx(id),
            vector,
            number,
            load: None,
        }
    }

    #[test]
    fn zone_keys_distinguish_zones_exactly() {
        let whole = Zone::whole(2);
        let (l, r) = whole.split(0);
        assert_eq!(ZoneKey::from_zone(&l), ZoneKey::from_zone(&l.clone()));
        assert_ne!(ZoneKey::from_zone(&l), ZoneKey::from_zone(&r));
        assert_ne!(ZoneKey::from_zone(&l), ZoneKey::from_zone(&whole));
    }

    #[test]
    fn condensed_box_has_rate_volume() {
        let region = Zone::whole(2);
        let c = condensed_box(&region, 0.25);
        assert!((c.volume() - 0.25).abs() < 1e-9);
        assert!(region.contains_zone(&c));
        assert_eq!(condensed_box(&region, 1.0), region);
    }

    #[test]
    fn positions_stay_inside_the_condensed_box() {
        let cfg = config();
        let map = ZoneMap::new(Zone::whole(2), &cfg);
        for raw in [0u128, 99, 5_000, 32_767] {
            let p = map.position_for(LandmarkNumber::new(raw), &cfg);
            assert!(
                map.condensed().contains(&p),
                "position {p} escaped the condensed box"
            );
        }
    }

    #[test]
    fn close_numbers_store_close_positions() {
        let cfg = config();
        let map = ZoneMap::new(Zone::whole(2), &cfg);
        let a = map.position_for(LandmarkNumber::new(1_000), &cfg);
        let b = map.position_for(LandmarkNumber::new(1_001), &cfg);
        let far = map.position_for(LandmarkNumber::new(20_000), &cfg);
        assert!(a.torus_distance(&b) <= a.torus_distance(&far));
    }

    #[test]
    fn publish_lookup_returns_nearest_by_vector() {
        let cfg = config();
        let mut map = ZoneMap::new(Zone::whole(2), &cfg);
        let near = info(1, [10.0, 40.0, 90.0], &cfg);
        let mid = info(2, [30.0, 60.0, 110.0], &cfg);
        let far = info(3, [300.0, 310.0, 305.0], &cfg);
        for i in [&near, &mid, &far] {
            map.publish(i.clone(), SimTime::ORIGIN, &cfg);
        }
        let query = LandmarkVector::from_millis(&[12.0, 41.0, 88.0]);
        let qn = cfg.grid().landmark_number(&query, cfg.curve());
        let found = map.lookup(&query, qn, 2, 32, SimTime::ORIGIN);
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].node, OverlayNodeId(1));
        assert_eq!(found[1].node, OverlayNodeId(2));
    }

    #[test]
    fn expired_entries_disappear_from_lookups() {
        let cfg = config();
        let mut map = ZoneMap::new(Zone::whole(2), &cfg);
        let i = info(1, [10.0, 40.0, 90.0], &cfg);
        map.publish(i.clone(), SimTime::ORIGIN, &cfg);
        let after_ttl = SimTime::ORIGIN + cfg.ttl() + SimDuration::from_micros(1);
        assert!(map
            .lookup(&i.vector, i.number, 5, 32, after_ttl)
            .is_empty());
        assert_eq!(map.expire(after_ttl), 1);
        assert!(map.is_empty());
    }

    #[test]
    fn refresh_extends_lifetime() {
        let cfg = config();
        let mut map = ZoneMap::new(Zone::whole(2), &cfg);
        let i = info(1, [10.0, 40.0, 90.0], &cfg);
        map.publish(i.clone(), SimTime::ORIGIN, &cfg);
        let half = SimTime::ORIGIN + cfg.ttl() / 2;
        assert!(map.refresh(OverlayNodeId(1), half, &cfg));
        let past_original = SimTime::ORIGIN + cfg.ttl() + SimDuration::from_secs(1);
        assert_eq!(map.lookup(&i.vector, i.number, 5, 32, past_original).len(), 1);
        assert!(!map.refresh(OverlayNodeId(9), half, &cfg));
    }

    #[test]
    fn remove_deletes_all_entries_of_a_node() {
        let cfg = config();
        let mut map = ZoneMap::new(Zone::whole(2), &cfg);
        map.publish(info(1, [10.0, 40.0, 90.0], &cfg), SimTime::ORIGIN, &cfg);
        assert!(map.remove(OverlayNodeId(1)));
        assert!(!map.remove(OverlayNodeId(1)));
        assert!(map.is_empty());
    }

    #[test]
    fn overscan_bounds_the_search_window() {
        let cfg = config();
        let mut map = ZoneMap::new(Zone::whole(2), &cfg);
        // Publish 20 nodes spread across the landmark space.
        for i in 0..20u32 {
            let base = 10.0 + i as f64 * 15.0;
            map.publish(
                info(i, [base, base + 5.0, base + 10.0], &cfg),
                SimTime::ORIGIN,
                &cfg,
            );
        }
        let query = LandmarkVector::from_millis(&[10.0, 15.0, 20.0]);
        let qn = cfg.grid().landmark_number(&query, cfg.curve());
        // overscan=1 examines at most 2 entries total.
        let narrow = map.lookup(&query, qn, 10, 1, SimTime::ORIGIN);
        assert!(narrow.len() <= 2);
        let wide = map.lookup(&query, qn, 10, 32, SimTime::ORIGIN);
        assert_eq!(wide.len(), 10);
    }

    /// A canonical, order-free fingerprint of an entry set.
    fn key_set(entries: Vec<&SoftStateEntry>) -> Vec<(u128, OverlayNodeId)> {
        let mut v: Vec<_> = entries
            .iter()
            .map(|e| (e.info.number.value(), e.info.node))
            .collect();
        v.sort();
        v
    }

    /// All dyadic sub-boxes of the unit square down to `max_level` splits
    /// per axis, plus one deliberately non-dyadic box (fallback path).
    fn query_zones(max_level: u32) -> Vec<Zone> {
        let mut zones = vec![Zone::whole(2)];
        for lx in 0..=max_level {
            for ly in 0..=max_level {
                let (sx, sy) = (0.5f64.powi(lx as i32), 0.5f64.powi(ly as i32));
                for ix in 0..(1u32 << lx) {
                    for iy in 0..(1u32 << ly) {
                        let lo = vec![ix as f64 * sx, iy as f64 * sy];
                        let hi = vec![lo[0] + sx, lo[1] + sy];
                        zones.push(Zone::from_bounds(lo, hi).unwrap());
                    }
                }
            }
        }
        zones.push(Zone::from_bounds(vec![0.1, 0.2], vec![0.55, 0.9]).unwrap());
        zones
    }

    #[test]
    fn live_entries_in_matches_the_contains_filter() {
        let cfg = config();
        let mut map = ZoneMap::new(Zone::whole(2), &cfg);
        for i in 0..60u32 {
            let base = 5.0 + i as f64 * 5.3;
            map.publish(
                info(i, [base, base + 7.0, base + 3.0], &cfg),
                SimTime::ORIGIN,
                &cfg,
            );
        }
        // Mutate: refresh a few, remove a few, republish one under a new
        // vector so its old position is vacated.
        let later = SimTime::ORIGIN + cfg.ttl() / 2;
        for id in [3u32, 17, 40] {
            assert!(map.refresh(OverlayNodeId(id), later, &cfg));
        }
        for id in [9u32, 22] {
            assert!(map.remove(OverlayNodeId(id)));
        }
        map.publish(info(30, [290.0, 280.0, 300.0], &cfg), later, &cfg);
        // Probe both while everything is live and after the un-refreshed
        // entries lapse (index must not resurrect dead entries).
        let lapsed = SimTime::ORIGIN + cfg.ttl() + SimDuration::from_micros(1);
        for now in [later, lapsed] {
            for zone in query_zones(3) {
                let indexed = key_set(map.live_entries_in(&zone, now));
                let scanned = key_set(
                    map.live_entries(now)
                        .filter(|e| zone.contains(&e.position))
                        .collect(),
                );
                assert_eq!(indexed, scanned, "zone {zone:?} at {now:?}");
            }
        }
    }

    #[test]
    fn wheel_expire_matches_the_full_scan() {
        let cfg = config();
        let mut wheel = ZoneMap::new(Zone::whole(2), &cfg);
        let mut scan = ZoneMap::new(Zone::whole(2), &cfg);
        for i in 0..40u32 {
            let base = 8.0 + i as f64 * 7.7;
            let at = SimTime::ORIGIN + SimDuration::from_millis(i as u64 * 250);
            let nfo = info(i, [base, base + 2.0, base + 9.0], &cfg);
            wheel.publish(nfo.clone(), at, &cfg);
            scan.publish(nfo, at, &cfg);
        }
        let mid = SimTime::ORIGIN + SimDuration::from_millis(2_000);
        for id in [2u32, 5, 11] {
            wheel.refresh(OverlayNodeId(id), mid, &cfg);
            scan.refresh(OverlayNodeId(id), mid, &cfg);
        }
        wheel.remove(OverlayNodeId(7));
        scan.remove(OverlayNodeId(7));
        // Expire in two waves; the lazy wheel and the full scan must drop
        // the same entries each time.
        for wave_ms in [4_500u64, 1_000_000] {
            let now = SimTime::ORIGIN + cfg.ttl() + SimDuration::from_millis(wave_ms);
            let dropped_wheel = wheel.expire(now);
            let dropped_scan = scan.expire_scan(now);
            assert_eq!(dropped_wheel, dropped_scan);
            assert_eq!(
                key_set(wheel.live_entries(now).collect()),
                key_set(scan.live_entries(now).collect()),
            );
            assert_eq!(wheel.len(), scan.len());
        }
        assert!(wheel.is_empty(), "everything lapses eventually");
    }

    #[test]
    fn republish_updates_in_place() {
        let cfg = config();
        let mut map = ZoneMap::new(Zone::whole(2), &cfg);
        let i = info(1, [10.0, 40.0, 90.0], &cfg);
        map.publish(i.clone(), SimTime::ORIGIN, &cfg);
        map.publish(i, SimTime::ORIGIN + SimDuration::from_secs(1), &cfg);
        assert_eq!(map.len(), 1, "same node re-publishing must not duplicate");
    }
}
