//! Soft-state maintenance policies (§5.2).
//!
//! "The global state can be lazily maintained. In the most reactive case,
//! departed nodes are deleted from the global state only when they are
//! selected as routing neighbor replacements and later found un-reachable.
//! Alternatively, each owner of the map information can periodically poll
//! the liveliness of the nodes. The most proactive measure is to update the
//! map when a node is about to depart."
//!
//! [`MaintenancePolicy`] encodes the three regimes; `apply_departure`
//! executes one departure under a policy against a [`GlobalState`] and
//! accounts its cost/staleness trade-off in a [`MaintenanceReport`].

use tao_overlay::OverlayNodeId;
use tao_sim::{SimDuration, SimTime};

use crate::store::GlobalState;

/// How the global state learns about departures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenancePolicy {
    /// Entries of departed nodes linger until a consumer trips over them
    /// (modelled as: entries stay until their TTL lapses).
    Reactive,
    /// Map owners poll liveness every `period`; a departed node's entries
    /// disappear at the next poll tick after its departure.
    PeriodicPoll {
        /// The polling period.
        period: SimDuration,
    },
    /// The departing node withdraws its own entries immediately.
    ProactiveDeparture,
}

/// Cost/staleness accounting for maintenance activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaintenanceReport {
    /// Messages spent on maintenance (withdrawals, poll probes).
    pub messages: u64,
    /// How long the departed node's entries stayed visible after departure.
    pub staleness: SimDuration,
}

impl MaintenancePolicy {
    /// Applies one node departure at `departed_at` under this policy.
    ///
    /// * `Reactive` — nothing is sent; entries stay visible until their TTL
    ///   lapses (`ttl_remaining` is how much TTL the entries had left).
    /// * `PeriodicPoll` — at the next poll tick the owner probes the node
    ///   (1 message per map entry) and deletes its entries.
    /// * `ProactiveDeparture` — the node withdraws from every map it is in
    ///   (1 message per map) with zero staleness.
    ///
    /// Returns the report; the [`GlobalState`] is updated to reflect the
    /// policy's effect at the time it takes effect.
    pub fn apply_departure(
        self,
        state: &mut GlobalState,
        node: OverlayNodeId,
        departed_at: SimTime,
        ttl_remaining: SimDuration,
    ) -> MaintenanceReport {
        match self {
            MaintenancePolicy::Reactive => {
                // The entries will lapse on their own; staleness is the
                // remaining TTL. Nothing to send now.
                MaintenanceReport {
                    messages: 0,
                    staleness: ttl_remaining,
                }
            }
            MaintenancePolicy::PeriodicPoll { period } => {
                // The next tick after departure discovers the death. One
                // probe per map listing the node.
                let maps_touched = state.remove(node) as u64;
                let _ = departed_at;
                MaintenanceReport {
                    messages: maps_touched,
                    staleness: period / 2, // expected wait until the next tick
                }
            }
            MaintenancePolicy::ProactiveDeparture => {
                let maps_touched = state.remove(node) as u64;
                MaintenanceReport {
                    messages: maps_touched,
                    staleness: SimDuration::ZERO,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SoftStateConfig;
    use crate::entry::NodeInfo;
    use tao_util::rand::rngs::StdRng;
    use tao_util::rand::SeedableRng;
    use tao_landmark::{LandmarkGrid, LandmarkVector};
    use tao_overlay::ecan::{EcanOverlay, RandomSelector};
    use tao_overlay::{CanOverlay, Point};
    use tao_topology::NodeIdx;

    fn published_state() -> (GlobalState, u64) {
        let mut can = CanOverlay::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(55);
        for i in 0..64u32 {
            can.join(NodeIdx(i), Point::random(2, &mut rng));
        }
        let ecan = EcanOverlay::build(can, &mut RandomSelector::new(3));
        let grid = LandmarkGrid::new(3, 5, SimDuration::from_millis(320)).unwrap();
        let mut state = GlobalState::new(SoftStateConfig::builder(grid).build());
        let vector = LandmarkVector::from_millis(&[20.0, 40.0, 60.0]);
        let number = state
            .config()
            .grid()
            .landmark_number(&vector, state.config().curve());
        let written = state.publish(
            NodeInfo {
                node: OverlayNodeId(7),
                underlay: NodeIdx(7),
                vector,
                number,
                load: None,
            },
            &ecan,
            SimTime::ORIGIN,
        );
        (state, written as u64)
    }

    #[test]
    fn reactive_sends_nothing_but_stays_stale() {
        let (mut state, _) = published_state();
        let before = state.total_entries();
        let r = MaintenancePolicy::Reactive.apply_departure(
            &mut state,
            OverlayNodeId(7),
            SimTime::ORIGIN,
            SimDuration::from_secs(30),
        );
        assert_eq!(r.messages, 0);
        assert_eq!(r.staleness, SimDuration::from_secs(30));
        assert_eq!(state.total_entries(), before, "entries linger");
    }

    #[test]
    fn proactive_withdraws_immediately() {
        let (mut state, written) = published_state();
        let r = MaintenancePolicy::ProactiveDeparture.apply_departure(
            &mut state,
            OverlayNodeId(7),
            SimTime::ORIGIN,
            SimDuration::from_secs(30),
        );
        assert_eq!(r.messages, written);
        assert_eq!(r.staleness, SimDuration::ZERO);
        assert_eq!(state.total_entries(), 0);
    }

    #[test]
    fn polling_pays_messages_for_bounded_staleness() {
        let (mut state, written) = published_state();
        let r = MaintenancePolicy::PeriodicPoll {
            period: SimDuration::from_secs(10),
        }
        .apply_departure(
            &mut state,
            OverlayNodeId(7),
            SimTime::ORIGIN,
            SimDuration::from_secs(30),
        );
        assert_eq!(r.messages, written);
        assert_eq!(r.staleness, SimDuration::from_secs(5));
        assert_eq!(state.total_entries(), 0);
    }
}
