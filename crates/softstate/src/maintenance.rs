//! Soft-state maintenance policies (§5.2).
//!
//! "The global state can be lazily maintained. In the most reactive case,
//! departed nodes are deleted from the global state only when they are
//! selected as routing neighbor replacements and later found un-reachable.
//! Alternatively, each owner of the map information can periodically poll
//! the liveliness of the nodes. The most proactive measure is to update the
//! map when a node is about to depart."
//!
//! [`MaintenancePolicy`] encodes the three regimes; `apply_departure`
//! executes one departure under a policy against a [`GlobalState`] and
//! accounts its cost/staleness trade-off in a [`MaintenanceReport`].

use tao_overlay::ecan::EcanOverlay;
use tao_overlay::OverlayNodeId;
use tao_util::time::{SimDuration, SimTime};

use crate::entry::NodeInfo;
use crate::store::GlobalState;

/// How the global state learns about departures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintenancePolicy {
    /// Entries of departed nodes linger until a consumer trips over them
    /// (modelled as: entries stay until their TTL lapses).
    Reactive,
    /// Map owners poll liveness every `period`; a departed node's entries
    /// disappear at the next poll tick after its departure.
    PeriodicPoll {
        /// The polling period.
        period: SimDuration,
    },
    /// The departing node withdraws its own entries immediately.
    ProactiveDeparture,
}

/// Cost/staleness accounting for maintenance activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaintenanceReport {
    /// Messages spent on maintenance (withdrawals, poll probes).
    pub messages: u64,
    /// How long the departed node's entries stayed visible after departure.
    pub staleness: SimDuration,
}

impl MaintenancePolicy {
    /// Applies one node departure at `departed_at` under this policy.
    ///
    /// * `Reactive` — nothing is sent; entries stay visible until their TTL
    ///   lapses (`ttl_remaining` is how much TTL the entries had left).
    /// * `PeriodicPoll` — at the next poll tick the owner probes the node
    ///   (1 message per map entry) and deletes its entries.
    /// * `ProactiveDeparture` — the node withdraws from every map it is in
    ///   (1 message per map) with zero staleness.
    ///
    /// Returns the report; the [`GlobalState`] is updated to reflect the
    /// policy's effect at the time it takes effect.
    pub fn apply_departure(
        self,
        state: &mut GlobalState,
        node: OverlayNodeId,
        departed_at: SimTime,
        ttl_remaining: SimDuration,
    ) -> MaintenanceReport {
        match self {
            MaintenancePolicy::Reactive => {
                // The entries will lapse on their own; staleness is the
                // remaining TTL. Nothing to send now.
                MaintenanceReport {
                    messages: 0,
                    staleness: ttl_remaining,
                }
            }
            MaintenancePolicy::PeriodicPoll { period } => {
                // The next tick after departure discovers the death. One
                // probe per map listing the node.
                let maps_touched = state.remove(node) as u64;
                let _ = departed_at;
                MaintenanceReport {
                    messages: maps_touched,
                    staleness: period / 2, // expected wait until the next tick
                }
            }
            MaintenancePolicy::ProactiveDeparture => {
                let maps_touched = state.remove(node) as u64;
                MaintenanceReport {
                    messages: maps_touched,
                    staleness: SimDuration::ZERO,
                }
            }
        }
    }
}

/// Accounting for one [`refresh_round`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RefreshReport {
    /// Entries dropped by the TTL sweep at the start of the round.
    pub expired: usize,
    /// Map writes performed by refreshes that reached the state.
    pub refresh_messages: u64,
    /// Nodes whose refresh was lost this round (fault injection).
    pub lost: u64,
    /// Map entries recreated by a publish after having expired or never
    /// been written — the lazy-repair path in action.
    pub repaired: u64,
}

/// Runs one soft-state maintenance round at `now`: first the TTL sweep
/// ([`GlobalState::expire`]), then every node in `nodes` re-publishes its
/// [`NodeInfo`] — unless `lose` says that node's refresh is lost this round
/// (a crashed node, or a refresh eaten by the lossy network).
///
/// Because a publish is an upsert, a node whose earlier refreshes were lost
/// repairs its entries the first time a refresh gets through again: soft
/// state tolerates lost refreshes by design, and this helper is how the
/// convergence tests drive that behaviour. The returned [`RefreshReport`]
/// distinguishes plain refreshes from repairs (entries that had to be
/// recreated rather than re-stamped).
pub fn refresh_round(
    state: &mut GlobalState,
    ecan: &EcanOverlay,
    nodes: &[NodeInfo],
    now: SimTime,
    mut lose: impl FnMut(&NodeInfo) -> bool,
) -> RefreshReport {
    let mut report = RefreshReport {
        expired: state.expire(now),
        ..RefreshReport::default()
    };
    for info in nodes {
        if lose(info) {
            report.lost += 1;
            continue;
        }
        // An upsert publish both refreshes surviving entries and recreates
        // lapsed ones; the refresh count tells the two cases apart.
        let already_present = state.refresh(info.node, now) as u64;
        let written = state.publish(info.clone(), ecan, now) as u64;
        report.refresh_messages += written;
        report.repaired += written.saturating_sub(already_present);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SoftStateConfig;
    use crate::entry::NodeInfo;
    use tao_util::rand::rngs::StdRng;
    use tao_util::rand::SeedableRng;
    use tao_landmark::{LandmarkGrid, LandmarkVector};
    use tao_overlay::ecan::{EcanOverlay, RandomSelector};
    use tao_overlay::{CanOverlay, Point};
    use tao_topology::NodeIdx;

    fn published_state() -> (GlobalState, u64) {
        let mut can = CanOverlay::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(55);
        for i in 0..64u32 {
            can.join(NodeIdx(i), Point::random(2, &mut rng));
        }
        let ecan = EcanOverlay::build(can, &mut RandomSelector::new(3));
        let grid = LandmarkGrid::new(3, 5, SimDuration::from_millis(320)).unwrap();
        let mut state = GlobalState::new(SoftStateConfig::builder(grid).build());
        let vector = LandmarkVector::from_millis(&[20.0, 40.0, 60.0]);
        let number = state
            .config()
            .grid()
            .landmark_number(&vector, state.config().curve());
        let written = state.publish(
            NodeInfo {
                node: OverlayNodeId(7),
                underlay: NodeIdx(7),
                vector,
                number,
                load: None,
            },
            &ecan,
            SimTime::ORIGIN,
        );
        (state, written as u64)
    }

    #[test]
    fn reactive_sends_nothing_but_stays_stale() {
        let (mut state, _) = published_state();
        let before = state.total_entries();
        let r = MaintenancePolicy::Reactive.apply_departure(
            &mut state,
            OverlayNodeId(7),
            SimTime::ORIGIN,
            SimDuration::from_secs(30),
        );
        assert_eq!(r.messages, 0);
        assert_eq!(r.staleness, SimDuration::from_secs(30));
        assert_eq!(state.total_entries(), before, "entries linger");
    }

    #[test]
    fn proactive_withdraws_immediately() {
        let (mut state, written) = published_state();
        let r = MaintenancePolicy::ProactiveDeparture.apply_departure(
            &mut state,
            OverlayNodeId(7),
            SimTime::ORIGIN,
            SimDuration::from_secs(30),
        );
        assert_eq!(r.messages, written);
        assert_eq!(r.staleness, SimDuration::ZERO);
        assert_eq!(state.total_entries(), 0);
    }

    #[test]
    fn refresh_round_repairs_entries_lost_to_dropped_refreshes() {
        let mut can = CanOverlay::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(56);
        for i in 0..64u32 {
            can.join(NodeIdx(i), Point::random(2, &mut rng));
        }
        let ecan = EcanOverlay::build(can, &mut RandomSelector::new(4));
        let grid = LandmarkGrid::new(3, 5, SimDuration::from_millis(320)).unwrap();
        let mut state = GlobalState::new(SoftStateConfig::builder(grid).build());
        let infos: Vec<NodeInfo> = (0..64u32)
            .map(|i| {
                let vector = LandmarkVector::from_millis(&[10.0 + i as f64, 50.0, 90.0]);
                let number = state
                    .config()
                    .grid()
                    .landmark_number(&vector, state.config().curve());
                NodeInfo {
                    node: OverlayNodeId(i),
                    underlay: NodeIdx(i),
                    vector,
                    number,
                    load: None,
                }
            })
            .collect();
        let ttl = state.config().ttl();
        // Round 0: everything is a repair (first write).
        let r0 = refresh_round(&mut state, &ecan, &infos, SimTime::ORIGIN, |_| false);
        assert_eq!(r0.lost, 0);
        assert!(r0.repaired > 0, "first round creates all entries");
        assert_eq!(r0.repaired, r0.refresh_messages);
        // Round 1 (within TTL): pure refresh, nothing to repair.
        let t1 = SimTime::ORIGIN + ttl.mul_f64(0.5);
        let r1 = refresh_round(&mut state, &ecan, &infos, t1, |_| false);
        assert_eq!(r1.repaired, 0, "nothing expired yet");
        assert_eq!(r1.expired, 0);
        // Node 7's refreshes are lost until its entries lapse...
        let t2 = t1 + ttl + SimDuration::from_secs(1);
        let r2 = refresh_round(&mut state, &ecan, &infos, t2, |i| i.node == OverlayNodeId(7));
        assert_eq!(r2.lost, 1);
        assert!(r2.expired > 0, "node 7's entries lapsed");
        // ...and the next round that gets through repairs them.
        let t3 = t2 + ttl.mul_f64(0.5);
        let r3 = refresh_round(&mut state, &ecan, &infos, t3, |_| false);
        assert!(r3.repaired > 0, "node 7's entries must be recreated");
        let report = state.convergence_report(&ecan, &infos, t3);
        assert!(report.is_converged(), "diverged: {report:?}");
    }

    #[test]
    fn polling_pays_messages_for_bounded_staleness() {
        let (mut state, written) = published_state();
        let r = MaintenancePolicy::PeriodicPoll {
            period: SimDuration::from_secs(10),
        }
        .apply_departure(
            &mut state,
            OverlayNodeId(7),
            SimTime::ORIGIN,
            SimDuration::from_secs(30),
        );
        assert_eq!(r.messages, written);
        assert_eq!(r.staleness, SimDuration::from_secs(5));
        assert_eq!(state.total_entries(), 0);
    }
}
