//! The global state: every region's map, taken together.
//!
//! Publishing a node writes its [`NodeInfo`] into the map of *every*
//! high-order zone that encloses its CAN zone (§5.1: "each node will appear
//! in a maximum of log(N) such maps"). Lookups name a target region and run
//! the Table-1 procedure against that region's map.

use tao_util::det::{DetMap, DetSet};

use tao_overlay::ecan::EcanOverlay;
use tao_overlay::{CanOverlay, OverlayNodeId, Zone};
use tao_util::time::SimTime;

use crate::config::SoftStateConfig;
use crate::entry::NodeInfo;
use crate::map::{ZoneKey, ZoneMap};

/// All per-region proximity maps of one overlay.
///
/// # Example
///
/// See the [crate documentation](crate) and the `global_state_lookup`
/// integration test.
#[derive(Debug, Clone)]
pub struct GlobalState {
    config: SoftStateConfig,
    maps: DetMap<ZoneKey, ZoneMap>,
}

impl GlobalState {
    /// Creates an empty global state.
    pub fn new(config: SoftStateConfig) -> Self {
        GlobalState {
            config,
            maps: DetMap::new(),
        }
    }

    /// The shared configuration.
    pub fn config(&self) -> &SoftStateConfig {
        &self.config
    }

    /// Number of region maps that exist so far.
    pub fn map_count(&self) -> usize {
        self.maps.len()
    }

    /// Total entries across all maps (live or stale).
    pub fn total_entries(&self) -> usize {
        self.maps.values().map(ZoneMap::len).sum()
    }

    /// The map for `region`, if any node has published into it.
    pub fn map(&self, region: &Zone) -> Option<&ZoneMap> {
        self.maps.get(&ZoneKey::from_zone(region))
    }

    /// Publishes `info` into the map of every high-order zone enclosing its
    /// node's CAN zone in `ecan`. Returns how many maps were written — the
    /// message cost of one publish round.
    pub fn publish(&mut self, info: NodeInfo, ecan: &EcanOverlay, now: SimTime) -> usize {
        let regions = ecan.enclosing_high_order_zones(info.node);
        let written = regions.len();
        for region in regions {
            let key = ZoneKey::from_zone(&region);
            let map = self
                .maps
                .entry(key)
                .or_insert_with(|| ZoneMap::new(region, &self.config));
            map.publish(info.clone(), now, &self.config);
        }
        written
    }

    /// Removes every entry of `node` (proactive departure, §5.2). Returns
    /// the number of maps touched.
    pub fn remove(&mut self, node: OverlayNodeId) -> usize {
        self.maps
            .values_mut()
            .map(|m| m.remove(node) as usize)
            .sum()
    }

    /// Refreshes `node`'s TTLs in every map that lists it. Returns the
    /// number of maps touched.
    pub fn refresh(&mut self, node: OverlayNodeId, now: SimTime) -> usize {
        let config = self.config;
        self.maps
            .values_mut()
            .map(|m| m.refresh(node, now, &config) as usize)
            .sum()
    }

    /// Expires lapsed entries everywhere; returns how many were dropped.
    pub fn expire(&mut self, now: SimTime) -> usize {
        self.maps.values_mut().map(|m| m.expire(now)).sum()
    }

    /// Looks up, in `region`'s map, up to `max` nodes whose landmark vectors
    /// are closest to `query` — the Table-1 procedure. Returns an empty list
    /// if the region has no map yet.
    pub fn lookup_in(
        &self,
        region: &Zone,
        query: &NodeInfo,
        max: usize,
        overscan: usize,
        now: SimTime,
    ) -> Vec<NodeInfo> {
        match self.map(region) {
            Some(map) => {
                let mut found = map.lookup(&query.vector, query.number, max, overscan, now);
                // Never hand a node back itself as a candidate.
                found.retain(|i| i.node != query.node);
                found
            }
            None => Vec::new(),
        }
    }

    /// The distributed lookup of Table 1: hash the query's landmark number
    /// to its position `p'` in `region`, route to the overlay node hosting
    /// `p'`, and consider only the map entries *that host actually stores*.
    /// If fewer than `max` candidates live there, widen the search to the
    /// host's CAN neighbors (the paper's "define a TTL to search outside
    /// y's map content range"). Candidates are ranked by full
    /// landmark-vector distance.
    ///
    /// This is the faithful model of the condense rate: spreading a map
    /// thin (rate → 1) leaves each host a small fragment and lookups see
    /// fewer candidates; condensing concentrates the map so the landing
    /// host answers with more of it.
    pub fn lookup_in_hosted(
        &self,
        region: &Zone,
        query: &NodeInfo,
        max: usize,
        can: &CanOverlay,
        now: SimTime,
    ) -> Vec<NodeInfo> {
        let Some(map) = self.map(region) else {
            return Vec::new();
        };
        let landing = map.position_for(query.number, &self.config);
        let host = can.owner(&landing);
        let mut hosts: Vec<OverlayNodeId> = vec![host];
        let mut candidates: Vec<&crate::entry::SoftStateEntry> = Vec::new();
        let mut widened = false;
        loop {
            candidates.clear();
            // An entry is stored by a host exactly when its position falls
            // in one of the host's zones, so each host contributes the live
            // entries of its zones — a Morton range probe per zone instead
            // of an owner() walk per entry.
            for &h in &hosts {
                let Ok(zones) = can.zones(h) else { continue };
                for zone in &zones {
                    candidates.extend(
                        map.live_entries_in(zone, now)
                            .into_iter()
                            .filter(|e| e.info.node != query.node),
                    );
                }
            }
            if candidates.len() >= max || widened {
                break;
            }
            // TTL widening: one ring of CAN neighbors around the host.
            if let Ok(neighbors) = can.neighbors(host) {
                for n in neighbors {
                    if !hosts.contains(&n) {
                        hosts.push(n);
                    }
                }
            }
            widened = true;
        }
        candidates.sort_by(|a, b| {
            let da = query.vector.euclidean_ms(&a.info.vector);
            let db = query.vector.euclidean_ms(&b.info.vector);
            da.partial_cmp(&db)
                .expect("distances are finite") // tao-lint: allow(no-unwrap-in-lib, reason = "distances are finite")
                .then(a.info.node.cmp(&b.info.node))
        });
        candidates
            .into_iter()
            .take(max)
            .map(|e| e.info.clone())
            .collect()
    }

    /// Reference implementation of [`lookup_in_hosted`]: classifies every
    /// live map entry with an `owner()` tree walk instead of probing the
    /// hosts' zones through the map's position index. Kept as the benchmark
    /// "before" kernel and as the oracle the indexed path is tested against;
    /// both return identical results.
    ///
    /// [`lookup_in_hosted`]: GlobalState::lookup_in_hosted
    pub fn lookup_in_hosted_scan(
        &self,
        region: &Zone,
        query: &NodeInfo,
        max: usize,
        can: &CanOverlay,
        now: SimTime,
    ) -> Vec<NodeInfo> {
        let Some(map) = self.map(region) else {
            return Vec::new();
        };
        let landing = map.position_for(query.number, &self.config);
        let host = can.owner(&landing);
        let mut hosts: Vec<OverlayNodeId> = vec![host];
        let mut candidates: Vec<&crate::entry::SoftStateEntry> = Vec::new();
        let mut widened = false;
        loop {
            candidates.clear();
            candidates.extend(map.live_entries(now).filter(|e| {
                e.info.node != query.node && hosts.contains(&can.owner(&e.position))
            }));
            if candidates.len() >= max || widened {
                break;
            }
            if let Ok(neighbors) = can.neighbors(host) {
                hosts.extend(neighbors);
            }
            widened = true;
        }
        candidates.sort_by(|a, b| {
            let da = query.vector.euclidean_ms(&a.info.vector);
            let db = query.vector.euclidean_ms(&b.info.vector);
            da.partial_cmp(&db)
                .expect("distances are finite") // tao-lint: allow(no-unwrap-in-lib, reason = "distances are finite")
                .then(a.info.node.cmp(&b.info.node))
        });
        candidates
            .into_iter()
            .take(max)
            .map(|e| e.info.clone())
            .collect()
    }

    /// Mean map entries among nodes that host at least one entry — the
    /// quantity figure 16 plots against the condense rate.
    pub fn mean_entries_per_hosting_node(&self, can: &CanOverlay) -> f64 {
        let totals = self.entries_per_host(can);
        let hosting: Vec<usize> = totals.values().copied().filter(|&c| c > 0).collect();
        if hosting.is_empty() {
            return 0.0;
        }
        hosting.iter().sum::<usize>() as f64 / hosting.len() as f64
    }

    /// Per-node hosting burden: how many map entries each overlay node
    /// stores (figure 16's dashed line). Nodes hosting nothing are included
    /// with zero so averages are honest.
    pub fn entries_per_host(&self, can: &CanOverlay) -> DetMap<OverlayNodeId, usize> {
        let mut totals: DetMap<OverlayNodeId, usize> =
            can.live_nodes().map(|id| (id, 0)).collect();
        for map in self.maps.values() {
            for (host, count) in map.entries_per_host(can) {
                *totals.entry(host).or_insert(0) += count;
            }
        }
        totals
    }

    /// Mean map entries per live node.
    pub fn mean_entries_per_host(&self, can: &CanOverlay) -> f64 {
        let totals = self.entries_per_host(can);
        if totals.is_empty() {
            return 0.0;
        }
        totals.values().sum::<usize>() as f64 / totals.len() as f64
    }

    /// Iterates over `(region, map)` pairs.
    pub fn maps(&self) -> impl Iterator<Item = &ZoneMap> {
        self.maps.values()
    }

    /// Compares the region maps against ground truth: `members` is the true
    /// live membership (with its current [`NodeInfo`]), and every member
    /// must have a live entry in the map of each high-order zone enclosing
    /// its CAN zone, while no map may hold a live entry for a node outside
    /// the membership. The harness's definition of *converged* after faults
    /// heal and TTL-many maintenance rounds run.
    pub fn convergence_report(
        &self,
        ecan: &EcanOverlay,
        members: &[NodeInfo],
        now: SimTime,
    ) -> ConvergenceReport {
        let live: DetSet<OverlayNodeId> = members.iter().map(|i| i.node).collect();
        let mut missing = 0;
        for info in members {
            for region in ecan.enclosing_high_order_zones(info.node) {
                let present = self
                    .map(&region)
                    .map_or(false, |m| m.live_entries(now).any(|e| e.info.node == info.node));
                if !present {
                    missing += 1;
                }
            }
        }
        let stale = self
            .maps
            .values()
            .flat_map(|m| m.live_entries(now))
            .filter(|e| !live.contains(&e.info.node))
            .count();
        ConvergenceReport { missing, stale }
    }
}

/// Divergence of the global state from ground-truth membership, as measured
/// by [`GlobalState::convergence_report`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConvergenceReport {
    /// `(member, region)` pairs where the member has no live entry in the
    /// region's map even though the region encloses its zone.
    pub missing: usize,
    /// Live map entries naming nodes outside the ground-truth membership.
    pub stale: usize,
}

impl ConvergenceReport {
    /// `true` when the maps exactly mirror the membership.
    pub fn is_converged(&self) -> bool {
        self.missing == 0 && self.stale == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::NodeInfo;
    use tao_util::rand::rngs::StdRng;
    use tao_util::rand::SeedableRng;
    use tao_landmark::{LandmarkGrid, LandmarkVector};
    use tao_overlay::ecan::RandomSelector;
    use tao_overlay::Point;
    use tao_util::time::SimDuration;
    use tao_topology::NodeIdx;

    fn setup(n: u32) -> (EcanOverlay, GlobalState) {
        let mut can = CanOverlay::new(2).unwrap();
        let mut rng = StdRng::seed_from_u64(31);
        for i in 0..n {
            can.join(NodeIdx(i), Point::random(2, &mut rng));
        }
        let ecan = EcanOverlay::build(can, &mut RandomSelector::new(1));
        let grid = LandmarkGrid::new(3, 5, SimDuration::from_millis(320)).unwrap();
        let config = SoftStateConfig::builder(grid).build();
        (ecan, GlobalState::new(config))
    }

    fn info_for(state: &GlobalState, id: u32, millis: [f64; 3]) -> NodeInfo {
        let vector = LandmarkVector::from_millis(&millis);
        let number = state
            .config()
            .grid()
            .landmark_number(&vector, state.config().curve());
        NodeInfo {
            node: OverlayNodeId(id),
            underlay: NodeIdx(id),
            vector,
            number,
            load: None,
        }
    }

    #[test]
    fn publish_writes_at_most_log_n_maps() {
        let (ecan, mut state) = setup(128);
        let info = info_for(&state, 5, [10.0, 50.0, 90.0]);
        let written = state.publish(info, &ecan, SimTime::ORIGIN);
        assert!(written >= 1, "a 128-node overlay has high-order zones");
        assert!(written <= 10, "must stay logarithmic, wrote {written}");
        assert_eq!(state.map_count(), written);
    }

    #[test]
    fn lookup_finds_published_neighbors_and_excludes_self() {
        let (ecan, mut state) = setup(128);
        let a = info_for(&state, 1, [10.0, 50.0, 90.0]);
        let b = info_for(&state, 2, [12.0, 52.0, 88.0]);
        state.publish(a.clone(), &ecan, SimTime::ORIGIN);
        state.publish(b.clone(), &ecan, SimTime::ORIGIN);
        // Query in the highest-order zone that contains node 1.
        let regions = ecan.enclosing_high_order_zones(a.node);
        let top = regions.last().expect("node has high-order zones");
        let found = state.lookup_in(top, &a, 5, 32, SimTime::ORIGIN);
        assert!(found.iter().all(|i| i.node != a.node), "no self-candidate");
        // b may or may not share this region; the call must not error.
        let _ = found;
    }

    #[test]
    fn remove_and_refresh_touch_every_relevant_map() {
        let (ecan, mut state) = setup(128);
        let info = info_for(&state, 3, [30.0, 60.0, 120.0]);
        let written = state.publish(info, &ecan, SimTime::ORIGIN);
        let refreshed = state.refresh(OverlayNodeId(3), SimTime::ORIGIN);
        assert_eq!(refreshed, written);
        let removed = state.remove(OverlayNodeId(3));
        assert_eq!(removed, written);
        assert_eq!(state.total_entries(), 0);
    }

    #[test]
    fn expire_sweeps_all_maps() {
        let (ecan, mut state) = setup(64);
        let info = info_for(&state, 4, [20.0, 40.0, 60.0]);
        let written = state.publish(info, &ecan, SimTime::ORIGIN);
        let later = SimTime::ORIGIN + state.config().ttl() + SimDuration::from_secs(1);
        assert_eq!(state.expire(later), written);
    }

    #[test]
    fn entries_per_host_covers_all_live_nodes() {
        let (ecan, mut state) = setup(64);
        for i in 0..64u32 {
            let info = info_for(&state, i, [10.0 + i as f64, 50.0, 90.0]);
            state.publish(info, &ecan, SimTime::ORIGIN);
        }
        let hosts = state.entries_per_host(ecan.can());
        assert_eq!(hosts.len(), 64);
        let total: usize = hosts.values().sum();
        assert_eq!(total, state.total_entries());
        assert!(state.mean_entries_per_host(ecan.can()) > 0.0);
    }

    #[test]
    fn convergence_report_counts_missing_and_stale() {
        let (ecan, mut state) = setup(128);
        let a = info_for(&state, 1, [10.0, 50.0, 90.0]);
        let b = info_for(&state, 2, [12.0, 52.0, 88.0]);
        state.publish(a.clone(), &ecan, SimTime::ORIGIN);
        // a published, b did not: b's regions are all missing it.
        let report = state.convergence_report(&ecan, &[a.clone(), b.clone()], SimTime::ORIGIN);
        assert_eq!(report.missing, ecan.enclosing_high_order_zones(b.node).len());
        assert_eq!(report.stale, 0);
        assert!(!report.is_converged());
        // Publish b too: converged against {a, b}...
        state.publish(b.clone(), &ecan, SimTime::ORIGIN);
        let report = state.convergence_report(&ecan, &[a.clone(), b], SimTime::ORIGIN);
        assert!(report.is_converged(), "diverged: {report:?}");
        // ...but with b out of the membership its entries are stale.
        let report = state.convergence_report(&ecan, &[a], SimTime::ORIGIN);
        assert!(report.stale > 0);
        assert!(!report.is_converged());
    }

    #[test]
    fn hosted_lookup_matches_the_owner_walk_oracle() {
        let (ecan, mut state) = setup(96);
        for i in 0..96u32 {
            let base = 5.0 + (i as f64 * 3.1) % 280.0;
            let info = info_for(&state, i, [base, base + 4.0, base + 11.0]);
            state.publish(info, &ecan, SimTime::ORIGIN);
        }
        let later = SimTime::ORIGIN + state.config().ttl() / 2;
        for id in [4u32, 19, 55] {
            state.refresh(OverlayNodeId(id), later);
        }
        for id in [8u32, 30] {
            state.remove(OverlayNodeId(id));
        }
        // Probe every region map, several query vectors, both while all
        // entries are live and after the un-refreshed ones lapse.
        let lapsed = SimTime::ORIGIN + state.config().ttl() + SimDuration::from_micros(1);
        let regions: Vec<Zone> = state.maps().map(|m| m.region().clone()).collect();
        for now in [later, lapsed] {
            for region in &regions {
                for q in [0u32, 7, 50, 91] {
                    let query = info_for(&state, q, [15.0 + q as f64, 60.0, 140.0]);
                    for max in [1usize, 4, 16] {
                        let fast = state.lookup_in_hosted(region, &query, max, ecan.can(), now);
                        let slow =
                            state.lookup_in_hosted_scan(region, &query, max, ecan.can(), now);
                        assert_eq!(fast, slow, "region {region:?} q={q} max={max}");
                    }
                }
            }
        }
    }

    #[test]
    fn missing_region_lookup_is_empty() {
        let (_, state) = setup(16);
        let q = info_for(&state, 0, [10.0, 20.0, 30.0]);
        assert!(state
            .lookup_in(&Zone::whole(2), &q, 5, 32, SimTime::ORIGIN)
            .is_empty());
    }
}
