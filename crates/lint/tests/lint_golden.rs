//! Golden test: every rule must fire on its violation fixture with the
//! exact expected positions and messages, and stay quiet on its clean
//! fixture. The expected output lives next to the fixtures in
//! `lint_fixtures/expected_findings.txt`; on mismatch the test prints
//! the actual output so the golden can be updated deliberately.

use tao_lint::rules::{lint_source, FileKind, Rule};

/// Every fixture, with the file kind it is linted as. Violation and
/// clean fixtures are interleaved so the golden shows each rule firing
/// and then staying quiet.
const FIXTURES: &[(&str, &str, FileKind)] = &[
    (
        "det_collections_violation.rs",
        include_str!("lint_fixtures/det_collections_violation.rs"),
        FileKind::Lib,
    ),
    (
        "det_collections_clean.rs",
        include_str!("lint_fixtures/det_collections_clean.rs"),
        FileKind::Lib,
    ),
    (
        "wall_clock_violation.rs",
        include_str!("lint_fixtures/wall_clock_violation.rs"),
        FileKind::Lib,
    ),
    (
        "wall_clock_clean.rs",
        include_str!("lint_fixtures/wall_clock_clean.rs"),
        FileKind::Lib,
    ),
    (
        "unwrap_violation.rs",
        include_str!("lint_fixtures/unwrap_violation.rs"),
        FileKind::Lib,
    ),
    (
        "unwrap_clean.rs",
        include_str!("lint_fixtures/unwrap_clean.rs"),
        FileKind::Lib,
    ),
    (
        "registry_violation.rs",
        include_str!("lint_fixtures/registry_violation.rs"),
        FileKind::TestHarness,
    ),
    (
        "registry_clean.rs",
        include_str!("lint_fixtures/registry_clean.rs"),
        FileKind::Lib,
    ),
    (
        "pragma_cases.rs",
        include_str!("lint_fixtures/pragma_cases.rs"),
        FileKind::Lib,
    ),
];

const GOLDEN: &str = include_str!("lint_fixtures/expected_findings.txt");

#[test]
fn findings_match_golden_file() {
    let mut actual = String::new();
    for (name, source, kind) in FIXTURES {
        for finding in lint_source(name, source, *kind).findings {
            actual.push_str(&finding.render());
            actual.push('\n');
        }
    }
    assert_eq!(
        actual.trim_end(),
        GOLDEN.trim_end(),
        "\n--- actual findings ---\n{actual}\n--- update lint_fixtures/expected_findings.txt if this change is intended ---"
    );
}

#[test]
fn clean_fixtures_stay_quiet() {
    for (name, source, kind) in FIXTURES {
        if name.ends_with("_clean.rs") {
            let report = lint_source(name, source, *kind);
            assert!(
                report.findings.is_empty(),
                "{name} should be clean but produced: {:?}",
                report.findings
            );
        }
    }
}

#[test]
fn every_token_rule_fires_somewhere() {
    // The structural rules (panic-reachability, crate-layering,
    // seed-discipline, unused-waiver) need workspace context and are
    // exercised by `tests/lint_structural.rs` instead.
    let mut fired: Vec<Rule> = Vec::new();
    for (name, source, kind) in FIXTURES {
        for f in lint_source(name, source, *kind).findings {
            if !fired.contains(&f.rule) {
                fired.push(f.rule);
            }
        }
    }
    for rule in tao_lint::rules::TOKEN_RULES {
        assert!(
            fired.contains(&rule),
            "no fixture exercises rule `{}`",
            rule.name()
        );
    }
}

#[test]
fn valid_pragmas_are_counted_as_waivers() {
    let (_, source, kind) = FIXTURES
        .iter()
        .find(|(name, _, _)| *name == "unwrap_clean.rs")
        .expect("fixture list contains unwrap_clean.rs");
    let report = lint_source("unwrap_clean.rs", source, *kind);
    let waived: Vec<u32> = report.waived.iter().map(|(_, line)| *line).collect();
    assert_eq!(waived, vec![4, 9], "both pragma forms must waive");
    assert!(report
        .waived
        .iter()
        .all(|(rule, _)| *rule == Rule::NoUnwrapInLib));
}

#[test]
fn malformed_pragmas_do_not_waive() {
    let (_, source, kind) = FIXTURES
        .iter()
        .find(|(name, _, _)| *name == "pragma_cases.rs")
        .expect("fixture list contains pragma_cases.rs");
    let report = lint_source("pragma_cases.rs", source, *kind);
    assert!(report.waived.is_empty());
    let unwraps = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::NoUnwrapInLib)
        .count();
    let bad = report
        .findings
        .iter()
        .filter(|f| f.rule == Rule::BadPragma)
        .count();
    assert_eq!(unwraps, 3, "all three unwraps must still fire");
    assert_eq!(bad, 3, "all three pragmas are malformed");
}
