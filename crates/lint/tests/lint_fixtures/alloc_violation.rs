//! Fixture: allocation sites reachable from `// tao-lint: hot` entry
//! points — both directly in the entry and one call-graph hop away.

/// A lookup table with a hot read path that (incorrectly) allocates.
pub struct Table {
    slots: Vec<u64>,
}

impl Table {
    /// Hot entry whose callee grows a collection: the finding anchors at
    /// the `.push(` site inside `record`, one hop down the chain.
    // tao-lint: hot
    pub fn lookup_fast(&mut self, key: u64) -> u64 {
        self.record(key);
        key
    }

    fn record(&mut self, key: u64) {
        self.slots.push(key);
    }

    /// Hot entry that allocates directly via `format!`.
    // tao-lint: hot
    pub fn label_fast(&self) -> String {
        format!("table/{}", self.slots.len())
    }
}
