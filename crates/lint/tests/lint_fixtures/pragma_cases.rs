// Fixture: malformed pragmas fire bad-pragma and waive nothing.

pub fn missing_reason(v: &[u64]) -> u64 {
    *v.first().unwrap() // tao-lint: allow(no-unwrap-in-lib)
}

pub fn empty_reason(v: &[u64]) -> u64 {
    *v.first().unwrap() // tao-lint: allow(no-unwrap-in-lib, reason = "")
}

pub fn unknown_rule(v: &[u64]) -> u64 {
    *v.first().unwrap() // tao-lint: allow(no-such-rule, reason = "nice try")
}
