//! Clean taint fixture: the fingerprint is a pure fold over its inputs,
//! and the environment read exists but no call path connects it to a
//! published sink — neither function may produce a finding.

pub fn state_fingerprint(state: &[u64]) -> u64 {
    state.iter().fold(0xcbf2_9ce4, |h, v| h ^ v)
}

pub fn worker_hint() -> usize {
    std::env::var("TAO_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}
