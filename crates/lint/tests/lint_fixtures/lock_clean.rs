//! Clean concurrency fixture: both paths take the locks in the same
//! global order and recover from poisoning instead of escalating — the
//! lock passes must stay quiet.

pub struct Ordered {
    first: std::sync::Mutex<u64>,
    second: std::sync::Mutex<u64>,
}

impl Ordered {
    pub fn sum(&self) -> u64 {
        let a = self.first.lock().unwrap_or_else(|p| p.into_inner());
        let b = self.second.lock().unwrap_or_else(|p| p.into_inner());
        *a + *b
    }

    pub fn shift(&self, v: u64) {
        let mut a = self.first.lock().unwrap_or_else(|p| p.into_inner());
        let mut b = self.second.lock().unwrap_or_else(|p| p.into_inner());
        *a += v;
        *b -= v;
    }
}
