//! Fixture: all three arith-safety site kinds inside one hot entry —
//! unguarded time arithmetic, a truncating cast, and index arithmetic.
//! The stacked `hot` marker + `allow` pragma also exercises the
//! next-code-line attachment rule: both must bind to the `fn` line.

/// A miniature timing wheel with every overflow hazard left unguarded.
pub struct Wheel {
    cursor: u64,
    lanes: [u64; 8],
}

impl Wheel {
    // tao-lint: hot
    // tao-lint: allow(panic-reachability, reason = "fixture: the lane index is the arith-safety target, not the panic path")
    pub fn advance_fast(&mut self, step: u64) -> u64 {
        self.cursor = self.cursor + step;
        let lane = self.cursor as u32;
        self.lanes[(lane as usize) * 2 + 1]
    }
}
