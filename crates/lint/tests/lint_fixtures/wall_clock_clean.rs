// Fixture: wall-clock mentions in strings/comments/tests — nothing fires.
// The real thing would be Instant::now(), which this comment may name.

pub fn warning() -> &'static str {
    "never call Instant::now() or SystemTime::now() in simulated code"
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_time_themselves() {
        let _t = Instant::now();
    }
}
