//! Lock-across-call violation: `record` still holds `entries` when it
//! calls `bump_stats`, which takes `stats` — a re-entrant path through
//! `record` while `stats` is contended deadlocks.

pub struct Registry {
    entries: std::sync::Mutex<Vec<u64>>,
    stats: std::sync::Mutex<u64>,
}

impl Registry {
    pub fn record(&self, v: u64) {
        let mut g = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        g.push(v);
        self.bump_stats();
    }

    fn bump_stats(&self) {
        let mut s = self.stats.lock().unwrap_or_else(|p| p.into_inner());
        *s += 1;
    }
}
