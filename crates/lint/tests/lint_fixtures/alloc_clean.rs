//! Fixture: a hot entry that touches no allocation site stays quiet, and
//! an allocating function OUTSIDE the hot closure stays quiet too.

/// A counter with an allocation-free hot path and an allocating cold
/// accessor.
pub struct Counter {
    total: u64,
}

impl Counter {
    /// Hot entry: pure arithmetic, no allocation sites anywhere in its
    /// closure.
    // tao-lint: hot
    pub fn bump_fast(&mut self) -> u64 {
        self.total = self.total.saturating_add(1);
        self.total
    }

    /// Allocates, but is not hot-marked and is called by no hot entry, so
    /// the alloc-reachability pass must ignore it.
    pub fn snapshot(&self) -> Vec<u64> {
        vec![self.total]
    }
}
