//! Fixture: the same overlay-layer file speaking only to crates the DAG
//! allows — time newtypes come from `tao_util::time`, not the engine.

use tao_landmark::LandmarkVector;
use tao_topology::Graph;
use tao_util::time::{SimDuration, SimTime};

pub fn deadline(now: SimTime, refresh: SimDuration) -> SimTime {
    now + refresh
}

pub fn dims(v: &LandmarkVector) -> usize {
    v.len()
}
