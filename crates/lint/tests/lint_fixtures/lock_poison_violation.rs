//! Lock-poison violation: `.expect(…)` on the guard escalates another
//! thread's panic into one here. The `no-unwrap-in-lib` waiver does not
//! cover the poison escape — that needs its own rule in the pragma.

pub struct Counter {
    inner: std::sync::Mutex<u64>,
}

impl Counter {
    pub fn bump(&self) -> u64 {
        let mut g = self.inner.lock().expect("counter poisoned"); // tao-lint: allow(no-unwrap-in-lib, reason = "fixture exercises lock-poison alone")
        *g += 1;
        *g
    }
}
