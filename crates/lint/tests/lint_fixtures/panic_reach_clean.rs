//! Fixture: panic-free entries, a pragma-acknowledged entry, and a
//! private panicking fn (not an entry) — all quiet.

pub struct SafeRouter {
    hops: Vec<u32>,
}

impl SafeRouter {
    pub fn route(&self, target: u32) -> Option<u32> {
        self.hops.first().map(|h| h + target)
    }

    // tao-lint: allow(panic-reachability, reason = "hops is non-empty after join; an empty router is a construction bug")
    pub fn route_unchecked(&self, target: u32) -> u32 {
        self.choose(target)
    }

    fn choose(&self, target: u32) -> u32 {
        // tao-lint: allow(no-unwrap-in-lib, reason = "hops is non-empty after join")
        *self.hops.first().expect("joined") + target
    }
}
