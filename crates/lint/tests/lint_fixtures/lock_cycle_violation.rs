//! Lock-order-cycle violation: `forward` takes `a` then `b`, `backward`
//! takes `b` then `a`. Two threads running them concurrently deadlock.

pub struct Pair {
    a: std::sync::Mutex<u64>,
    b: std::sync::Mutex<u64>,
}

impl Pair {
    pub fn forward(&self) -> u64 {
        let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
        let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
        *ga + *gb
    }

    pub fn backward(&self) -> u64 {
        let gb = self.b.lock().unwrap_or_else(|p| p.into_inner());
        let ga = self.a.lock().unwrap_or_else(|p| p.into_inner());
        *ga - *gb
    }
}
