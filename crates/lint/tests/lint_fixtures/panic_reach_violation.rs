//! Fixture: a pub entry point in an entry crate (`tao-overlay`) that
//! transitively reaches a leaf panic. The leaf's own waiver discharges
//! `no-unwrap-in-lib` but NOT the entry-point obligation.

pub struct Router {
    hops: Vec<u32>,
}

impl Router {
    pub fn route(&self, target: u32) -> u32 {
        self.pick(target)
    }

    fn pick(&self, target: u32) -> u32 {
        // tao-lint: allow(no-unwrap-in-lib, reason = "hops is non-empty after join")
        *self.hops.first().expect("joined") + target
    }
}
