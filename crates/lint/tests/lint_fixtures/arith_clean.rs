//! Fixture: the guarded forms of every arith-safety hazard stay quiet —
//! saturating time arithmetic, a mask before the narrowing cast, and a
//! bounded index.

/// A miniature clock doing everything the safe way.
pub struct Clock {
    cursor: u64,
    lanes: [u64; 8],
}

impl Clock {
    /// Hot entry: saturating add, masked cast, panic-free lane access.
    // tao-lint: hot
    pub fn tick_fast(&mut self, step: u64) -> u64 {
        self.cursor = self.cursor.saturating_add(step);
        let lane = (self.cursor & 7) as u32;
        self.lanes.get(lane as usize).copied().unwrap_or(0)
    }
}
