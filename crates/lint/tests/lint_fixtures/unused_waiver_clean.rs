//! Fixture: every pragma still guards a live site, including a
//! belt-and-suspenders waiver inside a test region (the rule is off
//! there, but the site exists, so the pragma is not stale). Linted as
//! `tao-landmark`, which is not a panic-reachability entry crate.

pub fn head(xs: &[u32]) -> u32 {
    // tao-lint: allow(no-unwrap-in-lib, reason = "callers pass non-empty slices by contract")
    *xs.first().expect("non-empty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn head_of_one() {
        let v = vec![1u32];
        // tao-lint: allow(no-unwrap-in-lib, reason = "defensive: kept while the helper is shared with doctests")
        assert_eq!(*v.first().unwrap(), 1);
    }
}
