// Fixture: std hash collections in library code must fire det-collections.
use std::collections::HashMap;
use std::collections::HashSet;

pub struct Routing {
    pub next_hop: HashMap<u64, u64>,
    pub seen: HashSet<u64>,
}
