//! Fixture: RNG seeds flowing from non-deterministic sources. Linted as
//! `tao-core` library code.

use tao_util::rand::rngs::StdRng;
use tao_util::rand::SeedableRng;

pub struct Clock {
    now: u64,
}

impl Clock {
    pub fn jittered(&self) -> StdRng {
        StdRng::seed_from_u64(self.now.wrapping_mul(3) ^ hash_hostname())
    }
}

fn hash_hostname() -> u64 {
    7
}
