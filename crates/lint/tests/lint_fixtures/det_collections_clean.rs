// Fixture: DetMap in lib code, std hash collections confined to tests,
// strings, and comments — nothing may fire.
use tao_util::det::{DetMap, DetSet};

pub struct Routing {
    pub next_hop: DetMap<u64, u64>,
    pub seen: DetSet<u64>,
}

// A HashMap mentioned in a comment is fine.
pub fn describe() -> &'static str {
    "iteration order of a std HashMap is per-process random"
}

#[cfg(test)]
mod tests {
    use std::collections::{HashMap, HashSet};

    #[test]
    fn tests_may_hash() {
        let mut m = HashMap::new();
        m.insert(1u64, 2u64);
        let mut s = HashSet::new();
        s.insert(1u64);
    }
}
