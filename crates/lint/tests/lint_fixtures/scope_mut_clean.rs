//! Clean scope fixture: the shared accumulator is only touched through
//! its `Mutex`, and per-task state stays closure-local — the sanctioned
//! `par_map` discipline.

pub fn tally(xs: &[u64]) -> u64 {
    let total = std::sync::Mutex::new(0u64);
    std::thread::scope(|s| {
        for chunk in xs.chunks(2) {
            s.spawn(|| {
                let mut sum = 0u64;
                for v in chunk {
                    sum += v;
                }
                *total.lock().unwrap_or_else(|p| p.into_inner()) += sum;
            });
        }
    });
    total.into_inner().unwrap_or_else(|p| p)
}
