// Fixture: unwrap/expect in library code must fire no-unwrap-in-lib.

pub fn head(v: &[u64]) -> u64 {
    *v.first().unwrap()
}

pub fn named(v: &[u64]) -> u64 {
    *v.first().expect("caller guarantees non-empty")
}
