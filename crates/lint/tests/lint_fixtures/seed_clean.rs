//! Fixture: every seed is a literal, a parameter, or seed-derivation
//! arithmetic over one — the replayable shapes.

use tao_util::rand::rngs::StdRng;
use tao_util::rand::SeedableRng;

pub fn master() -> StdRng {
    StdRng::seed_from_u64(0xD1CE)
}

pub fn derived(master: u64, task: u64) -> StdRng {
    StdRng::seed_from_u64(master.wrapping_mul(0x9E37_79B9).wrapping_add(task))
}

pub fn forwarded(seed: u64, node: u32) -> StdRng {
    StdRng::seed_from_u64(seed ^ u64::from(node))
}

fn derive_seed(master: u64, lane: u64) -> u64 {
    master.rotate_left(17) ^ lane
}

pub fn helper_derived(master: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(master, 3))
}
