//! Determinism-taint violation: an environment read flows into a
//! published fingerprint through two call hops. The finding anchors at
//! the sink and carries the full witness chain.

pub fn report_fingerprint(state: &[u64]) -> u64 {
    let salt = tuning_knob();
    state.iter().fold(salt, |h, v| h ^ v)
}

fn tuning_knob() -> u64 {
    knob_from_env()
}

fn knob_from_env() -> u64 {
    std::env::var("TAO_KNOB").map(|v| v.len() as u64).unwrap_or(0)
}
