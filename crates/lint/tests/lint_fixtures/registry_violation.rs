// Fixture: banned registry imports must fire no-registry-import,
// even in test-harness files.
use serde::Serialize;

extern crate rand;

use proptest::prelude::*;
