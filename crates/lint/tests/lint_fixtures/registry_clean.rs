// Fixture: in-tree substrates whose module names shadow banned crate
// names — `tao_util::rand` is fine, bare `rand` is not.
use tao_util::rand::{Rng, StdRng};
use tao_util::check::for_all;

pub fn roll(rng: &mut StdRng) -> u64 {
    rng.gen()
}

pub fn harness() {
    for_all("fixture", |_rng| {});
}
