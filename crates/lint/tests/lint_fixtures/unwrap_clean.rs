// Fixture: waived, test-only, and literal-embedded unwraps — nothing fires.

pub fn head(v: &[u64]) -> u64 {
    *v.first().unwrap() // tao-lint: allow(no-unwrap-in-lib, reason = "callers pass non-empty slices by contract")
}

pub fn named(v: &[u64]) -> u64 {
    // tao-lint: allow(no-unwrap-in-lib, reason = "length checked by the caller")
    *v.first().expect("caller guarantees non-empty")
}

pub fn doc() -> &'static str {
    "calling .unwrap() here would be a bug"
}

#[test]
fn tests_may_unwrap() {
    let v = vec![1u64];
    assert_eq!(*v.first().unwrap(), 1);
}
