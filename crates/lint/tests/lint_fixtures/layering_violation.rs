//! Fixture: an overlay-layer file reaching *up* the DAG. Linted as
//! `tao-overlay` library code, so both the `use` edge into the engine
//! and the inline path into the assembled system are violations.

use tao_sim::SimTime;
use tao_topology::Graph; // allowed: overlay sits above topology

pub fn deadline(now: SimTime) -> SimTime {
    let params = tao_core::params::ExperimentParams::default();
    now + params.refresh_interval
}
