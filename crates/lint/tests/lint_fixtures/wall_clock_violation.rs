// Fixture: wall-clock reads in library code must fire no-wall-clock.
use std::time::{Instant, SystemTime};

pub fn elapsed() -> Instant {
    Instant::now()
}

pub fn stamp() -> SystemTime {
    SystemTime::now()
}
