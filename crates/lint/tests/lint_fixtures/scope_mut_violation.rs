//! Scope-shared-mut violation: the spawned closures mutate a captured
//! accumulator directly — racing `+=` writes are lost or reordered
//! nondeterministically.

pub fn tally(xs: &[u64]) -> u64 {
    let mut total = 0u64;
    std::thread::scope(|s| {
        for chunk in xs.chunks(2) {
            s.spawn(|| {
                for v in chunk {
                    total += v;
                }
            });
        }
    });
    total
}
