//! Fixture: a waiver whose code has since been rewritten not to panic —
//! the pragma is now itself the finding.

pub fn lookup(xs: &[u32], i: usize) -> Option<u32> {
    xs.get(i).copied() // tao-lint: allow(no-unwrap-in-lib, reason = "bounds checked by caller")
}
