//! Lexer edge-case goldens: the inputs that historically break
//! hand-rolled Rust lexers. Each test pins the exact token stream (kind,
//! text) and the byte-span invariant `src[lo..hi] == text`, so a lexer
//! regression shows up as a golden diff rather than a mysterious
//! downstream lint misfire.

use tao_lint::lexer::{lex, Token, TokenKind};

/// Asserts the `(kind, text)` sequence and that every token's byte span
/// slices back to its text.
fn assert_stream(src: &str, expected: &[(TokenKind, &str)]) {
    let tokens = lex(src);
    let got: Vec<(TokenKind, &str)> = tokens.iter().map(|t| (t.kind, t.text.as_str())).collect();
    assert_eq!(got, expected, "token stream mismatch for {src:?}");
    assert_spans(src, &tokens);
}

/// Spans must be in-bounds, non-overlapping, increasing, and faithful.
fn assert_spans(src: &str, tokens: &[Token]) {
    let mut prev_hi = 0;
    for t in tokens {
        assert!(t.lo >= prev_hi, "overlapping spans at {:?}", t.text);
        assert!(t.hi <= src.len(), "span past EOF at {:?}", t.text);
        assert_eq!(&src[t.lo..t.hi], t.text, "span does not slice back to text");
        prev_hi = t.hi;
    }
}

#[test]
fn raw_strings_with_hash_delimiters_inside_attributes() {
    // The `"` and `//` inside the raw string must not open a string or a
    // comment; the `#` delimiters belong to the literal.
    let src = "#[doc = r##\"has \"quotes\"# and // no comment\"##]\nfn f() {}";
    assert_stream(
        src,
        &[
            (TokenKind::Punct, "#"),
            (TokenKind::Punct, "["),
            (TokenKind::Ident, "doc"),
            (TokenKind::Punct, "="),
            (TokenKind::Str, "r##\"has \"quotes\"# and // no comment\"##"),
            (TokenKind::Punct, "]"),
            (TokenKind::Ident, "fn"),
            (TokenKind::Ident, "f"),
            (TokenKind::Punct, "("),
            (TokenKind::Punct, ")"),
            (TokenKind::Punct, "{"),
            (TokenKind::Punct, "}"),
        ],
    );
}

#[test]
fn nested_block_comment_ending_at_eof() {
    // Rust block comments nest; an unterminated one runs to EOF without
    // panicking and without leaking tokens from inside the comment.
    let src = "fn g() {}\n/* outer /* inner */ still the outer comment";
    let tokens = lex(src);
    assert_spans(src, &tokens);
    let last = tokens.last().expect("tokens");
    assert_eq!(last.kind, TokenKind::Comment);
    assert_eq!(last.text, "/* outer /* inner */ still the outer comment");
    assert_eq!(last.hi, src.len(), "comment must extend to EOF");
    assert!(
        !tokens.iter().any(|t| t.text == "still"),
        "comment interior leaked as tokens"
    );
}

#[test]
fn lifetimes_are_not_char_literals() {
    // `'a` in `<'a>` and `&'a` is a lifetime; `'x'` is a char; `'\''` is
    // an escaped char. All three adjacent in one header.
    let src = "fn h<'a>(v: &'a u32) -> char { let c = '\\''; let d = 'x'; c }";
    let tokens = lex(src);
    assert_spans(src, &tokens);
    let lifetimes: Vec<&str> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Lifetime)
        .map(|t| t.text.as_str())
        .collect();
    let chars: Vec<&str> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Char)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(lifetimes, vec!["'a", "'a"]);
    assert_eq!(chars, vec!["'\\''", "'x'"]);
}

#[test]
fn shebang_prefixed_file() {
    // `#!/usr/bin/env …` on line 1 is a shebang (skipped like a
    // comment), but `#![inner_attr]` is NOT a shebang — the `[`
    // disambiguates, exactly as in rustc.
    let src = "#!/usr/bin/env cargo-script\nfn main() { body(); }\n";
    let tokens = lex(src);
    assert_spans(src, &tokens);
    assert_eq!(tokens[0].kind, TokenKind::Comment);
    assert_eq!(tokens[0].text, "#!/usr/bin/env cargo-script");
    assert_eq!(tokens[1].text, "fn");
    assert_eq!(tokens[1].line, 2, "code after the shebang is on line 2");

    let attr = "#![allow(dead_code)]\nfn main() {}\n";
    let tokens = lex(attr);
    assert_spans(attr, &tokens);
    assert_eq!(
        (tokens[0].kind, tokens[0].text.as_str()),
        (TokenKind::Punct, "#"),
        "inner attribute must lex as punctuation, not a shebang comment"
    );
    assert_eq!(tokens[1].text, "!");
    assert_eq!(tokens[2].text, "[");
}

#[test]
fn glued_path_separator_and_numbers_keep_offsets() {
    let src = "use a::b;\nlet x = 0xFF_u32 + 1.5e3;";
    let tokens = lex(src);
    assert_spans(src, &tokens);
    assert!(tokens.iter().any(|t| t.kind == TokenKind::Punct && t.text == "::"));
    let numbers: Vec<&str> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Number)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(numbers, vec!["0xFF_u32", "1.5e3"]);
}

#[test]
fn raw_identifiers_lex_as_single_ident_tokens() {
    // `r#fn` names a function and `r#type` a parameter: each is ONE
    // identifier token — the `r#` must not open a raw string, and the
    // keyword after the `#` must not surface as a separate token.
    let src = "fn r#fn(r#type: u32) -> u32 { r#type }";
    let tokens = lex(src);
    assert_spans(src, &tokens);
    let idents: Vec<&str> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(idents, vec!["fn", "r#fn", "r#type", "u32", "u32", "r#type"]);
    assert!(
        !tokens.iter().any(|t| t.kind == TokenKind::Str),
        "`r#` must not be misread as a raw-string opener"
    );
}

#[test]
fn byte_string_literals_in_all_three_forms() {
    // Escaped byte string (with a `//` inside that must not open a
    // comment), raw byte string, and a byte char, all on one line.
    let src = r##"let a = b"x \" // y"; let r = br#"raw "b"#; let c = b'\n';"##;
    let tokens = lex(src);
    assert_spans(src, &tokens);
    let strs: Vec<&str> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Str)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(strs, vec![r#"b"x \" // y""#, r##"br#"raw "b"#"##]);
    let chars: Vec<&str> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::Char)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(chars, vec![r"b'\n'"]);
    assert!(
        !tokens.iter().any(|t| t.kind == TokenKind::Comment),
        "`//` inside a byte string leaked as a comment"
    );
}
