//! Property test: item-parser round-trip over the *real* workspace.
//!
//! For every `.rs` file the manifest-driven walk discovers, the
//! recovered top-level item spans plus the gaps between them must
//! reconstruct the file's byte count exactly — no overlap, no token
//! orphaned outside every item, nothing counted twice. This pins the
//! brace-matching logic of `items::parse_items` against all the syntax
//! the codebase actually uses, not just the unit-test snippets.

use std::path::Path;

use tao_lint::items::{code_tokens, parse_items};
use tao_lint::lexer::lex;
use tao_lint::walk::workspace_sources;

/// Integration tests run with the package directory as CWD; the
/// workspace root is two levels up.
fn workspace_root() -> &'static Path {
    Path::new("../..")
}

#[test]
fn spans_plus_gaps_reconstruct_every_file_exactly() {
    let root = workspace_root();
    let walked = workspace_sources(root).expect("walk the workspace");
    assert!(
        walked.len() > 50,
        "workspace walk found only {} files — manifest parsing regressed?",
        walked.len()
    );
    for file in &walked {
        let source = std::fs::read_to_string(root.join(&file.path)).expect("read source");
        let tokens = lex(&source);
        let code = code_tokens(&tokens);
        let items = parse_items(&code);

        // Top-level spans are sorted and non-overlapping.
        for w in items.windows(2) {
            assert!(
                w[0].hi <= w[1].lo,
                "{}: item `{}` [{}, {}) overlaps `{}` [{}, {})",
                file.path.display(),
                w[0].qual,
                w[0].lo,
                w[0].hi,
                w[1].qual,
                w[1].lo,
                w[1].hi
            );
        }

        // Spans + gaps == file byte count, exactly.
        let mut covered = 0usize;
        let mut cursor = 0usize;
        for item in &items {
            assert!(
                item.lo >= cursor && item.hi >= item.lo && item.hi <= source.len(),
                "{}: item `{}` span [{}, {}) out of order or out of bounds (len {})",
                file.path.display(),
                item.qual,
                item.lo,
                item.hi,
                source.len()
            );
            covered += item.hi - item.lo;
            cursor = item.hi;
        }
        let gaps = source.len() - covered;
        assert_eq!(
            covered + gaps,
            source.len(),
            "{}: span arithmetic must be exact",
            file.path.display()
        );

        // Every code token is owned by exactly one top-level item, and
        // the gaps own none of them.
        for t in &code {
            let owners = items
                .iter()
                .filter(|i| i.lo <= t.lo && t.hi <= i.hi)
                .count();
            assert_eq!(
                owners,
                1,
                "{}: token {:?} at byte {} (line {}) owned by {} top-level items",
                file.path.display(),
                t.text,
                t.lo,
                t.line,
                owners
            );
        }
    }
}

#[test]
fn nested_items_stay_inside_their_parents() {
    let root = workspace_root();
    let walked = workspace_sources(root).expect("walk the workspace");
    for file in &walked {
        let source = std::fs::read_to_string(root.join(&file.path)).expect("read source");
        let tokens = lex(&source);
        let code = code_tokens(&tokens);
        for item in parse_items(&code) {
            check_children(&item, &file.path.display().to_string());
        }
    }
}

fn check_children(item: &tao_lint::items::Item, path: &str) {
    for child in &item.children {
        assert!(
            item.lo <= child.lo && child.hi <= item.hi,
            "{path}: child `{}` [{}, {}) escapes parent `{}` [{}, {})",
            child.qual,
            child.lo,
            child.hi,
            item.qual,
            item.lo,
            item.hi
        );
        check_children(child, path);
    }
}

#[test]
fn nested_turbofish_does_not_derail_span_recovery() {
    // Deeply nested turbofish closes with the `>>`/`>>>`-adjacent runs a
    // naive angle matcher miscounts. The item parser must still recover
    // exactly two sibling fns, in order, each with a body span, and the
    // comparison operators in the second body must not be mistaken for
    // generic brackets.
    let src = "\
pub fn nested() -> usize {
    let v = Vec::<Vec<Vec<u32>>>::new();
    let m = v.iter().map(|x| x.len()).collect::<Vec<usize>>();
    let pairs = m
        .iter()
        .map(|&n| (n, n))
        .collect::<std::collections::BTreeMap<usize, usize>>();
    pairs.len() + v.len()
}

pub fn sibling(a: usize, b: usize) -> bool {
    a < b && b > a
}
";
    let tokens = lex(src);
    let code = code_tokens(&tokens);
    let items = parse_items(&code);
    let names: Vec<&str> = items.iter().map(|i| i.name.as_str()).collect();
    assert_eq!(
        names,
        vec!["nested", "sibling"],
        "turbofish swallowed an item boundary"
    );
    for item in &items {
        assert!(
            item.body.is_some(),
            "fn `{}` lost its body span to angle-bracket miscounting",
            item.name
        );
    }
    assert!(
        items[0].hi <= items[1].lo,
        "recovered spans overlap: [{}, {}) then [{}, {})",
        items[0].lo,
        items[0].hi,
        items[1].lo,
        items[1].hi
    );
}
