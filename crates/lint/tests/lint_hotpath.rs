//! Golden test for the v4 hot-path passes (alloc-reachability +
//! arith-safety): each pass must fire on its violation fixture with the
//! exact expected positions, messages, and hot-entry witness chains, and
//! stay quiet on its clean fixture. Fixtures are linted as a synthetic
//! mini-workspace, so the golden is stable regardless of the real
//! workspace's state.

use tao_lint::rules::{lint_workspace, FileKind, Rule, SourceFile};

/// `(path, crate, kind, source)` for every hot-path fixture.
const FIXTURES: &[(&str, &str, FileKind, &str)] = &[
    (
        "crates/overlay/src/alloc_violation.rs",
        "tao-overlay",
        FileKind::Lib,
        include_str!("lint_fixtures/alloc_violation.rs"),
    ),
    (
        "crates/overlay/src/alloc_clean.rs",
        "tao-overlay",
        FileKind::Lib,
        include_str!("lint_fixtures/alloc_clean.rs"),
    ),
    (
        "crates/sim/src/arith_violation.rs",
        "tao-sim",
        FileKind::Lib,
        include_str!("lint_fixtures/arith_violation.rs"),
    ),
    (
        "crates/sim/src/arith_clean.rs",
        "tao-sim",
        FileKind::Lib,
        include_str!("lint_fixtures/arith_clean.rs"),
    ),
];

const GOLDEN: &str = include_str!("lint_fixtures/expected_hotpath.txt");

const HOTPATH_RULES: [Rule; 2] = [Rule::AllocReachability, Rule::ArithSafety];

fn sources() -> Vec<SourceFile> {
    FIXTURES
        .iter()
        .map(|(path, krate, kind, source)| SourceFile {
            path: path.to_string(),
            krate: krate.to_string(),
            kind: *kind,
            source: source.to_string(),
        })
        .collect()
}

#[test]
fn hotpath_findings_match_golden_file() {
    let report = lint_workspace(&sources());
    let mut actual = String::new();
    for finding in &report.findings {
        actual.push_str(&finding.render());
        actual.push('\n');
    }
    assert_eq!(
        actual.trim_end(),
        GOLDEN.trim_end(),
        "\n--- actual findings ---\n{actual}\n--- update lint_fixtures/expected_hotpath.txt if this change is intended ---"
    );
}

#[test]
fn clean_fixtures_stay_quiet() {
    let report = lint_workspace(&sources());
    for f in &report.findings {
        assert!(
            !f.path.ends_with("_clean.rs"),
            "clean fixture produced a finding: {}",
            f.render()
        );
    }
}

#[test]
fn both_hotpath_rules_fire_somewhere() {
    let report = lint_workspace(&sources());
    for rule in HOTPATH_RULES {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "no fixture exercises hot-path rule `{}`",
            rule.name()
        );
    }
}

#[test]
fn hotpath_keys_are_line_free() {
    // The stable keys must not contain line numbers, so the committed
    // baseline does not churn when unrelated edits shift code.
    let report = lint_workspace(&sources());
    for f in &report.findings {
        if !HOTPATH_RULES.contains(&f.rule) {
            continue;
        }
        let line_str = format!(":{}", f.line);
        assert!(
            !f.key.contains(&line_str),
            "key `{}` embeds line {}",
            f.key,
            f.line
        );
    }
}

#[test]
fn alloc_finding_carries_the_hot_entry_chain() {
    // The `.push(` site in `record` is one hop from the hot entry; the
    // message must name the entry and walk the chain down to the owner.
    let report = lint_workspace(&sources());
    let growth = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::AllocReachability && f.key.ends_with(":growth"))
        .expect("growth fixture must fire");
    assert!(
        growth.message.contains("hot closure of `Table::lookup_fast`"),
        "hot entry missing from: {}",
        growth.message
    );
    assert!(
        growth.message.contains("Table::lookup_fast → Table::record"),
        "witness chain missing from: {}",
        growth.message
    );
}

#[test]
fn all_three_arith_kinds_fire_in_the_violation_fixture() {
    let report = lint_workspace(&sources());
    for kind in ["time-arith", "truncating-cast", "index-arith"] {
        assert!(
            report
                .findings
                .iter()
                .any(|f| f.rule == Rule::ArithSafety && f.key.ends_with(kind)),
            "arith kind `{kind}` did not fire"
        );
    }
}

#[test]
fn hot_marker_stacks_with_allow_pragmas_on_one_item() {
    // `advance_fast` carries a stacked hot marker AND a
    // panic-reachability waiver on the lines above the `fn`; both must
    // attach to it — the entry is hot (arith findings exist) and the
    // indexing panic is waived (no panic-reachability finding).
    let report = lint_workspace(&sources());
    assert!(
        report
            .findings
            .iter()
            .all(|f| f.rule != Rule::PanicReachability),
        "stacked waiver failed to attach: {:?}",
        report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::PanicReachability)
            .map(|f| f.render())
            .collect::<Vec<_>>()
    );
    assert!(report
        .waived
        .iter()
        .any(|(r, _, _)| *r == Rule::PanicReachability));
}

#[test]
fn site_waiver_silences_the_alloc_finding() {
    // A waiver at the allocation site (not the entry point) discharges
    // the finding, mirroring how the runtime crates acknowledge legal
    // amortized growth.
    let src = "pub struct B { v: Vec<u64> }\n\
               impl B {\n    \
               // tao-lint: hot\n    \
               pub fn hot_append(&mut self, x: u64) {\n        \
               self.v.push(x); // tao-lint: allow(alloc-reachability, reason = \"fixture: amortized growth\")\n    \
               }\n}\n";
    let report = lint_workspace(&[SourceFile {
        path: "crates/overlay/src/site_waiver.rs".to_string(),
        krate: "tao-overlay".to_string(),
        kind: FileKind::Lib,
        source: src.to_string(),
    }]);
    assert!(
        report.findings.is_empty(),
        "site waiver must silence the finding: {:?}",
        report.findings.iter().map(|f| f.render()).collect::<Vec<_>>()
    );
    assert!(report
        .waived
        .iter()
        .any(|(r, _, _)| *r == Rule::AllocReachability));
}

#[test]
fn unmarked_workspace_produces_no_hotpath_findings() {
    // Without any `hot` marker the closure is empty: the passes are
    // strictly opt-in and cannot fire on unannotated code.
    let src = "pub struct P { v: Vec<u64> }\n\
               impl P {\n    \
               pub fn append(&mut self, x: u64) {\n        \
               self.v.push(x);\n    \
               }\n}\n";
    let report = lint_workspace(&[SourceFile {
        path: "crates/overlay/src/unmarked.rs".to_string(),
        krate: "tao-overlay".to_string(),
        kind: FileKind::Lib,
        source: src.to_string(),
    }]);
    assert!(
        report
            .findings
            .iter()
            .all(|f| !HOTPATH_RULES.contains(&f.rule)),
        "hot-path rule fired without a hot marker: {:?}",
        report.findings.iter().map(|f| f.render()).collect::<Vec<_>>()
    );
}
