//! Golden test for the dataflow passes (determinism taint + concurrency
//! analysis): each rule must fire on its violation fixture with the
//! exact expected positions, messages, and witness chains, and stay
//! quiet on its clean fixture. Fixtures are linted as a synthetic
//! mini-workspace, so the golden is stable regardless of the real
//! workspace's state.

use tao_lint::rules::{lint_workspace, FileKind, Rule, SourceFile};

/// `(path, crate, kind, source)` for every dataflow fixture.
const FIXTURES: &[(&str, &str, FileKind, &str)] = &[
    (
        "crates/core/src/taint_violation.rs",
        "tao-core",
        FileKind::Lib,
        include_str!("lint_fixtures/taint_violation.rs"),
    ),
    (
        "crates/core/src/taint_clean.rs",
        "tao-core",
        FileKind::Lib,
        include_str!("lint_fixtures/taint_clean.rs"),
    ),
    (
        "crates/topology/src/lock_cycle_violation.rs",
        "tao-topology",
        FileKind::Lib,
        include_str!("lint_fixtures/lock_cycle_violation.rs"),
    ),
    (
        "crates/topology/src/lock_clean.rs",
        "tao-topology",
        FileKind::Lib,
        include_str!("lint_fixtures/lock_clean.rs"),
    ),
    (
        "crates/topology/src/lock_poison_violation.rs",
        "tao-topology",
        FileKind::Lib,
        include_str!("lint_fixtures/lock_poison_violation.rs"),
    ),
    (
        "crates/topology/src/lock_across_violation.rs",
        "tao-topology",
        FileKind::Lib,
        include_str!("lint_fixtures/lock_across_violation.rs"),
    ),
    (
        "crates/util/src/scope_mut_violation.rs",
        "tao-util",
        FileKind::Lib,
        include_str!("lint_fixtures/scope_mut_violation.rs"),
    ),
    (
        "crates/util/src/scope_mut_clean.rs",
        "tao-util",
        FileKind::Lib,
        include_str!("lint_fixtures/scope_mut_clean.rs"),
    ),
];

const GOLDEN: &str = include_str!("lint_fixtures/expected_dataflow.txt");

const DATAFLOW_RULES: [Rule; 5] = [
    Rule::DeterminismTaint,
    Rule::LockOrderCycle,
    Rule::LockPoison,
    Rule::LockAcrossCall,
    Rule::ScopeSharedMut,
];

fn sources() -> Vec<SourceFile> {
    FIXTURES
        .iter()
        .map(|(path, krate, kind, source)| SourceFile {
            path: path.to_string(),
            krate: krate.to_string(),
            kind: *kind,
            source: source.to_string(),
        })
        .collect()
}

#[test]
fn dataflow_findings_match_golden_file() {
    let report = lint_workspace(&sources());
    let mut actual = String::new();
    for finding in &report.findings {
        actual.push_str(&finding.render());
        actual.push('\n');
    }
    assert_eq!(
        actual.trim_end(),
        GOLDEN.trim_end(),
        "\n--- actual findings ---\n{actual}\n--- update lint_fixtures/expected_dataflow.txt if this change is intended ---"
    );
}

#[test]
fn clean_fixtures_stay_quiet() {
    let report = lint_workspace(&sources());
    for f in &report.findings {
        assert!(
            !f.path.ends_with("_clean.rs"),
            "clean fixture produced a finding: {}",
            f.render()
        );
    }
}

#[test]
fn every_dataflow_rule_fires_somewhere() {
    let report = lint_workspace(&sources());
    for rule in DATAFLOW_RULES {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "no fixture exercises dataflow rule `{}`",
            rule.name()
        );
    }
}

#[test]
fn dataflow_keys_are_line_free() {
    // The stable keys must not contain line numbers, so the committed
    // baseline does not churn when unrelated edits shift code.
    let report = lint_workspace(&sources());
    for f in &report.findings {
        if !DATAFLOW_RULES.contains(&f.rule) {
            continue;
        }
        let line_str = format!(":{}", f.line);
        assert!(
            !f.key.contains(&line_str),
            "key `{}` embeds line {}",
            f.key,
            f.line
        );
    }
}

#[test]
fn taint_finding_carries_the_full_witness_chain() {
    let report = lint_workspace(&sources());
    let taint = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::DeterminismTaint)
        .expect("taint fixture must fire");
    assert!(
        taint
            .message
            .contains("report_fingerprint → tuning_knob → knob_from_env"),
        "witness chain missing from: {}",
        taint.message
    );
    assert!(
        taint.message.contains("taint_violation.rs:15"),
        "source position missing from: {}",
        taint.message
    );
}

#[test]
fn cycle_finding_names_both_edges_with_provenance() {
    let report = lint_workspace(&sources());
    let cycle = report
        .findings
        .iter()
        .find(|f| f.rule == Rule::LockOrderCycle)
        .expect("cycle fixture must fire");
    assert!(
        cycle.message.contains("lock_cycle_violation.a → lock_cycle_violation.b")
            && cycle.message.contains("lock_cycle_violation.b → lock_cycle_violation.a"),
        "cycle edges missing from: {}",
        cycle.message
    );
    assert!(
        cycle.message.contains("`Pair::forward`") && cycle.message.contains("`Pair::backward`"),
        "edge provenance missing from: {}",
        cycle.message
    );
}

#[test]
fn multi_rule_pragma_waives_each_listed_rule() {
    // One comment, two rules: the `lock().expect(…)` line in the poison
    // fixture carries `allow(no-unwrap-in-lib, …)` so only `lock-poison`
    // remains; adding the second rule silences that too.
    let src = "pub struct C {\n    m: std::sync::Mutex<u64>,\n}\n\
               impl C {\n    pub fn get(&self) -> u64 {\n        \
               *self.m.lock().expect(\"poisoned\") // tao-lint: allow(no-unwrap-in-lib, lock-poison, reason = \"fixture: both rules on one line\")\n    \
               }\n}\n";
    let report = lint_workspace(&[SourceFile {
        path: "crates/topology/src/multi.rs".to_string(),
        krate: "tao-topology".to_string(),
        kind: FileKind::Lib,
        source: src.to_string(),
    }]);
    assert!(
        report.findings.is_empty(),
        "multi-rule pragma must waive both rules: {:?}",
        report.findings.iter().map(|f| f.render()).collect::<Vec<_>>()
    );
    assert!(report.waived.iter().any(|(r, _, _)| *r == Rule::NoUnwrapInLib));
    assert!(report.waived.iter().any(|(r, _, _)| *r == Rule::LockPoison));
}
