//! Golden test for the structural rules: each rule must fire on its
//! violation fixture with the exact expected positions and messages, and
//! stay quiet on its clean fixture. Fixtures are linted as a synthetic
//! mini-workspace (the paths and crate names below don't exist on disk —
//! `lint_workspace` only sees what we hand it), so the golden is stable
//! regardless of the real workspace's state.

use tao_lint::rules::{lint_workspace, FileKind, Rule, SourceFile};

/// `(path, crate, kind, source)` for every structural fixture.
const FIXTURES: &[(&str, &str, FileKind, &str)] = &[
    (
        "crates/overlay/src/layering_violation.rs",
        "tao-overlay",
        FileKind::Lib,
        include_str!("lint_fixtures/layering_violation.rs"),
    ),
    (
        "crates/overlay/src/layering_clean.rs",
        "tao-overlay",
        FileKind::Lib,
        include_str!("lint_fixtures/layering_clean.rs"),
    ),
    (
        "crates/core/src/seed_violation.rs",
        "tao-core",
        FileKind::Lib,
        include_str!("lint_fixtures/seed_violation.rs"),
    ),
    (
        "crates/core/src/seed_clean.rs",
        "tao-core",
        FileKind::Lib,
        include_str!("lint_fixtures/seed_clean.rs"),
    ),
    (
        "crates/overlay/src/panic_reach_violation.rs",
        "tao-overlay",
        FileKind::Lib,
        include_str!("lint_fixtures/panic_reach_violation.rs"),
    ),
    (
        "crates/overlay/src/panic_reach_clean.rs",
        "tao-overlay",
        FileKind::Lib,
        include_str!("lint_fixtures/panic_reach_clean.rs"),
    ),
    (
        "crates/landmark/src/unused_waiver_violation.rs",
        "tao-landmark",
        FileKind::Lib,
        include_str!("lint_fixtures/unused_waiver_violation.rs"),
    ),
    (
        "crates/landmark/src/unused_waiver_clean.rs",
        "tao-landmark",
        FileKind::Lib,
        include_str!("lint_fixtures/unused_waiver_clean.rs"),
    ),
];

const GOLDEN: &str = include_str!("lint_fixtures/expected_structural.txt");

fn sources() -> Vec<SourceFile> {
    FIXTURES
        .iter()
        .map(|(path, krate, kind, source)| SourceFile {
            path: path.to_string(),
            krate: krate.to_string(),
            kind: *kind,
            source: source.to_string(),
        })
        .collect()
}

#[test]
fn structural_findings_match_golden_file() {
    let report = lint_workspace(&sources());
    let mut actual = String::new();
    for finding in &report.findings {
        actual.push_str(&finding.render());
        actual.push('\n');
    }
    assert_eq!(
        actual.trim_end(),
        GOLDEN.trim_end(),
        "\n--- actual findings ---\n{actual}\n--- update lint_fixtures/expected_structural.txt if this change is intended ---"
    );
}

#[test]
fn clean_fixtures_stay_quiet() {
    let report = lint_workspace(&sources());
    for f in &report.findings {
        assert!(
            !f.path.ends_with("_clean.rs"),
            "clean fixture produced a finding: {}",
            f.render()
        );
    }
}

#[test]
fn every_structural_rule_fires_somewhere() {
    let report = lint_workspace(&sources());
    for rule in [
        Rule::PanicReachability,
        Rule::CrateLayering,
        Rule::SeedDiscipline,
        Rule::UnusedWaiver,
    ] {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "no fixture exercises structural rule `{}`",
            rule.name()
        );
    }
}

#[test]
fn structural_keys_are_line_free() {
    // The stable keys must not contain line numbers, so the committed
    // baseline does not churn when unrelated edits shift code.
    let report = lint_workspace(&sources());
    for f in &report.findings {
        let line_str = format!(":{}", f.line);
        match f.rule {
            Rule::PanicReachability | Rule::CrateLayering | Rule::SeedDiscipline => {
                assert!(
                    !f.key.contains(&line_str),
                    "key `{}` embeds line {}",
                    f.key,
                    f.line
                );
            }
            _ => {}
        }
    }
}

#[test]
fn entry_pragmas_count_as_waivers() {
    let report = lint_workspace(&sources());
    assert!(
        report.waived.iter().any(|(rule, path, _)| {
            *rule == Rule::PanicReachability && path.ends_with("panic_reach_clean.rs")
        }),
        "the acknowledged entry in panic_reach_clean.rs must be a waiver, got {:?}",
        report.waived
    );
}
