//! Property test: the full workspace lint report must be byte-identical
//! across repeated runs and across `TAO_WORKERS` settings. The lint
//! *checks* determinism, so it had better be deterministic itself — any
//! ordering leak (hash iteration, filesystem enumeration order, worker
//! scheduling) would churn the committed baseline diff.

use std::path::Path;

use tao_lint::report::render_json;
use tao_lint::rules::{lint_workspace, SourceFile};
use tao_lint::walk::workspace_sources;

/// Walks the real workspace and renders the full JSON report.
fn run_once() -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let walked = workspace_sources(&root).expect("workspace walk");
    let inputs: Vec<SourceFile> = walked
        .iter()
        .map(|w| SourceFile {
            path: w.path.display().to_string(),
            krate: w.krate.clone(),
            kind: w.kind,
            source: std::fs::read_to_string(root.join(&w.path)).expect("readable source"),
        })
        .collect();
    let report = lint_workspace(&inputs);
    render_json(&report.findings, report.files)
}

#[test]
fn report_is_byte_identical_across_runs_and_worker_settings() {
    let baseline = run_once();
    assert!(!baseline.is_empty());

    // Repeated run, same environment.
    assert_eq!(baseline, run_once(), "repeated run diverged");

    // Runs under different TAO_WORKERS settings: the report must not
    // depend on the parallelism knob in any way.
    for workers in ["1", "8"] {
        std::env::set_var("TAO_WORKERS", workers);
        assert_eq!(baseline, run_once(), "TAO_WORKERS={workers} diverged");
    }
    std::env::remove_var("TAO_WORKERS");
    assert_eq!(baseline, run_once(), "run after env cleanup diverged");
}
