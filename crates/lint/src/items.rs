//! A brace-matched item parser over the token stream.
//!
//! [`parse_items`] recovers the item structure of a file — `fn`, `struct`,
//! `enum`, `mod`, `impl`, `trait`, `use`, `const`, `static`, `type`,
//! `macro_rules!` — with byte spans, visibility, `#[cfg(test)]`/`#[test]`
//! status, and (for functions) the token range of the body. It is *not* a
//! Rust parser: expressions, types, and generics are skipped by tracking
//! bracket depth, which is exactly enough for the structural lint rules
//! (panic-reachability, crate layering, seed discipline) to know *which
//! item* a token belongs to and *who calls whom*.
//!
//! Invariant (checked by the `item_roundtrip` property test): the top-level
//! items of a file have strictly increasing, non-overlapping byte spans,
//! and every non-comment token of the file falls inside exactly one
//! top-level span — no token is silently unowned.

use crate::lexer::{Token, TokenKind};

/// What kind of item was recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// A free function or method (`fn`).
    Fn,
    /// A `struct` definition.
    Struct,
    /// An `enum` definition.
    Enum,
    /// A `union` definition.
    Union,
    /// An inline or out-of-line module (`mod m { … }` / `mod m;`).
    Mod,
    /// An `impl` block; `name` is the self type's last path segment.
    Impl,
    /// A `trait` definition.
    Trait,
    /// A `use` declaration; `name` holds the rendered path.
    Use,
    /// A `const` item.
    Const,
    /// A `static` item.
    Static,
    /// A `type` alias.
    TypeAlias,
    /// A `macro_rules!` definition.
    MacroDef,
    /// An `extern crate` declaration; `name` is the crate.
    ExternCrate,
    /// Anything the parser could not classify (inner attributes, foreign
    /// blocks, stray tokens); owned so byte coverage stays exact.
    Other,
}

/// Item visibility, as far as the structural rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// Plain `pub`.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`.
    Scoped,
    /// No visibility modifier.
    Private,
}

/// One recovered item. Items form a tree: modules, traits, and impl
/// blocks carry their members in `children`.
#[derive(Debug, Clone)]
pub struct Item {
    /// The item's kind.
    pub kind: ItemKind,
    /// Simple name (`fn join` → `join`; `impl CanOverlay` → `CanOverlay`;
    /// `use` → the full rendered path). Empty for unnamed `Other` items.
    pub name: String,
    /// `::`-joined path within the file: enclosing modules, then the impl
    /// or trait type, then the name (`tests::helpers::mk`, or
    /// `CanOverlay::join` for a method).
    pub qual: String,
    /// The item's declared visibility.
    pub vis: Visibility,
    /// True if the item, or any enclosing item, is under `#[cfg(test)]`
    /// or `#[test]`.
    pub is_test: bool,
    /// 1-based line of the item's first token (attributes included).
    pub line: u32,
    /// Byte span `[lo, hi)` of the item, attributes included.
    pub lo: usize,
    /// End of the byte span (one past the last byte).
    pub hi: usize,
    /// Code-token index span `[start, end)` of the whole item (signature
    /// and body), indexing into the slice given to [`parse_items`]. The
    /// dataflow passes scan this to see tokens the `body` range misses —
    /// a `ByteWriter` parameter lives in the signature, not the body.
    pub tok: (usize, usize),
    /// For items with a braced body: the code-token index range
    /// `(start, end)` *inside* the braces, exclusive of the braces
    /// themselves. Indexes into the same code-token slice given to
    /// [`parse_items`].
    pub body: Option<(usize, usize)>,
    /// Members of a module, trait, or impl block.
    pub children: Vec<Item>,
}

impl Item {
    /// Visits this item and all descendants.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Item)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }
}

/// Parses the top-level items of a file from its *code* tokens (comments
/// filtered out, as produced by [`code_tokens`]).
pub fn parse_items(code: &[&Token]) -> Vec<Item> {
    let mut p = Parser { code };
    p.items(0, code.len(), "", false)
}

/// Filters a lexed token stream down to code tokens (everything but
/// comments), preserving order.
pub fn code_tokens(tokens: &[Token]) -> Vec<&Token> {
    tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect()
}

struct Parser<'a> {
    code: &'a [&'a Token],
}

impl<'a> Parser<'a> {
    fn text(&self, i: usize) -> &str {
        self.code.get(i).map_or("", |t| t.text.as_str())
    }

    fn kind(&self, i: usize) -> Option<TokenKind> {
        self.code.get(i).map(|t| t.kind)
    }

    /// Parses the items in `[i, end)` under module path `path`.
    fn items(&mut self, mut i: usize, end: usize, path: &str, in_test: bool) -> Vec<Item> {
        let mut out = Vec::new();
        while i < end {
            let (item, next) = self.item(i, end, path, in_test);
            debug_assert!(next > i, "item parser must make progress");
            out.push(item);
            i = next;
        }
        out
    }

    /// Parses one item starting at code-token index `i`; returns the item
    /// and the index of the first token after it.
    fn item(&mut self, start: usize, end: usize, path: &str, in_test: bool) -> (Item, usize) {
        let mut i = start;
        let mut attr_test = false;

        // Leading attributes. An inner attribute (`#![…]`) is its own
        // `Other` item — it belongs to the enclosing module, not to the
        // next item.
        while i < end && self.text(i) == "#" && self.text(i + 1) == "[" {
            let (idents, after) = self.attr_idents(i + 2, end);
            let is_cfg_test =
                idents.contains(&"cfg") && idents.contains(&"test") && !idents.contains(&"not");
            let is_test_attr = idents == ["test"];
            if is_cfg_test || is_test_attr {
                attr_test = true;
            }
            i = after;
        }
        if i >= end {
            // Attributes at end of scope with no item: own them as Other.
            return (self.mk(ItemKind::Other, "", path, Visibility::Private, in_test, start, end.min(self.code.len()), None, Vec::new()), end);
        }
        if self.text(i) == "#" && self.text(i + 1) == "!" && i == start {
            // Inner attribute: `#![…]`.
            let (_, after) = self.attr_idents(i + 3, end);
            return (self.mk(ItemKind::Other, "", path, Visibility::Private, in_test, start, after, None, Vec::new()), after);
        }

        // Visibility.
        let mut vis = Visibility::Private;
        if self.text(i) == "pub" {
            vis = Visibility::Pub;
            i += 1;
            if self.text(i) == "(" {
                vis = Visibility::Scoped;
                i = self.match_delim(i, end, "(", ")");
            }
        }

        let is_test = in_test || attr_test;

        // Function modifiers (`const fn`, `unsafe fn`, `async fn`,
        // `extern "C" fn`). `const`/`extern` double as item keywords, so
        // look ahead before treating them as modifiers.
        let mut j = i;
        loop {
            match self.text(j) {
                "unsafe" | "async" => j += 1,
                "const" if matches!(self.text(j + 1), "fn" | "unsafe" | "async" | "extern") => {
                    j += 1
                }
                "extern" if self.kind(j + 1) == Some(TokenKind::Str) => {
                    // `extern "C" fn` modifier or `extern "C" { … }` block.
                    if self.text(j + 2) == "fn" {
                        j += 2;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }

        match self.text(j) {
            "fn" => self.fn_item(start, j, end, path, vis, is_test),
            "struct" => self.named_block_or_semi(start, j, end, path, vis, is_test, ItemKind::Struct),
            "enum" => self.named_block_or_semi(start, j, end, path, vis, is_test, ItemKind::Enum),
            "union" if self.kind(j + 1) == Some(TokenKind::Ident) && self.text(j + 2) != "." => {
                self.named_block_or_semi(start, j, end, path, vis, is_test, ItemKind::Union)
            }
            "mod" => self.mod_item(start, j, end, path, vis, is_test),
            "impl" => self.impl_item(start, j, end, path, vis, is_test),
            "trait" => self.trait_item(start, j, end, path, vis, is_test),
            "use" => {
                let (text, after) = self.to_semi_text(j + 1, end);
                (self.mk(ItemKind::Use, &text, path, vis, is_test, start, after, None, Vec::new()), after)
            }
            "const" | "static" => {
                let kind = if self.text(j) == "const" { ItemKind::Const } else { ItemKind::Static };
                let mut k = j + 1;
                if self.text(k) == "mut" {
                    k += 1;
                }
                let name = self.text(k).to_string();
                let after = self.skip_to_semi(k, end);
                (self.mk(kind, &name, path, vis, is_test, start, after, None, Vec::new()), after)
            }
            "type" => {
                let name = self.text(j + 1).to_string();
                let after = self.skip_to_semi(j + 1, end);
                (self.mk(ItemKind::TypeAlias, &name, path, vis, is_test, start, after, None, Vec::new()), after)
            }
            "macro_rules" => {
                let name = self.text(j + 2).to_string(); // after `!`
                let mut k = j + 3;
                let after = if self.text(k) == "{" {
                    self.match_delim(k, end, "{", "}")
                } else {
                    // `macro_rules! m(…);` — rare; delimiter then `;`.
                    k = self.match_delim(k, end, "(", ")");
                    self.skip_to_semi(k, end)
                };
                (self.mk(ItemKind::MacroDef, &name, path, vis, is_test, start, after, None, Vec::new()), after)
            }
            "extern" if self.text(j + 1) == "crate" => {
                let name = self.text(j + 2).to_string();
                let after = self.skip_to_semi(j + 2, end);
                (self.mk(ItemKind::ExternCrate, &name, path, vis, is_test, start, after, None, Vec::new()), after)
            }
            "extern" => {
                // Foreign block `extern "C" { … }`.
                let after = self.skip_to_block_or_semi(j, end).1;
                (self.mk(ItemKind::Other, "", path, vis, is_test, start, after, None, Vec::new()), after)
            }
            _ => {
                // Unclassifiable: own up to the next `;` or balanced block
                // so coverage stays exact and progress is guaranteed.
                let after = self.skip_to_block_or_semi(j, end).1.max(start + 1);
                (self.mk(ItemKind::Other, "", path, vis, is_test, start, after, None, Vec::new()), after)
            }
        }
    }

    fn fn_item(&mut self, start: usize, kw: usize, end: usize, path: &str, vis: Visibility, is_test: bool) -> (Item, usize) {
        let name = self.text(kw + 1).to_string();
        let (body_open, after) = self.skip_to_block_or_semi(kw + 1, end);
        let body = body_open.map(|open| (open + 1, after.saturating_sub(1)));
        (self.mk(ItemKind::Fn, &name, path, vis, is_test, start, after, body, Vec::new()), after)
    }

    fn named_block_or_semi(&mut self, start: usize, kw: usize, end: usize, path: &str, vis: Visibility, is_test: bool, kind: ItemKind) -> (Item, usize) {
        let name = self.text(kw + 1).to_string();
        let (_, after) = self.skip_to_block_or_semi(kw + 1, end);
        (self.mk(kind, &name, path, vis, is_test, start, after, None, Vec::new()), after)
    }

    fn mod_item(&mut self, start: usize, kw: usize, end: usize, path: &str, vis: Visibility, is_test: bool) -> (Item, usize) {
        let name = self.text(kw + 1).to_string();
        if self.text(kw + 2) == ";" {
            return (self.mk(ItemKind::Mod, &name, path, vis, is_test, start, kw + 3, None, Vec::new()), kw + 3);
        }
        let open = kw + 2; // `{`
        let after = self.match_delim(open, end, "{", "}");
        let sub_path = join(path, &name);
        let children = self.items(open + 1, after.saturating_sub(1), &sub_path, is_test);
        let body = Some((open + 1, after.saturating_sub(1)));
        (self.mk(ItemKind::Mod, &name, path, vis, is_test, start, after, body, children), after)
    }

    fn impl_item(&mut self, start: usize, kw: usize, end: usize, path: &str, vis: Visibility, is_test: bool) -> (Item, usize) {
        // Header runs from after `impl` to the body `{` at bracket depth 0.
        let mut k = kw + 1;
        let mut depth = 0i32;
        let mut after_for: Option<usize> = None;
        while k < end {
            match self.text(k) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "for" if depth == 0 => after_for = Some(k + 1),
                "{" if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        let mut header_start = after_for.unwrap_or(kw + 1);
        // Skip the generic-parameter list of `impl<K, V> …` so the type
        // name is read from the type position, not the parameters.
        if after_for.is_none() && self.text(header_start) == "<" {
            let mut angle = 0i32;
            while header_start < k {
                match self.text(header_start) {
                    "<" => angle += 1,
                    ">" => {
                        angle -= 1;
                        if angle == 0 {
                            header_start += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                header_start += 1;
            }
        }
        let name = self.type_name_in(header_start, k);
        let open = k;
        let after = self.match_delim(open, end, "{", "}");
        let sub_path = join(path, &name);
        let children = self.items(open + 1, after.saturating_sub(1), &sub_path, is_test);
        let body = Some((open + 1, after.saturating_sub(1)));
        (self.mk(ItemKind::Impl, &name, path, vis, is_test, start, after, body, children), after)
    }

    fn trait_item(&mut self, start: usize, kw: usize, end: usize, path: &str, vis: Visibility, is_test: bool) -> (Item, usize) {
        let name = self.text(kw + 1).to_string();
        let (open, after) = self.skip_to_block_or_semi(kw + 1, end);
        let (children, body) = match open {
            Some(open) => {
                let sub_path = join(path, &name);
                (self.items(open + 1, after.saturating_sub(1), &sub_path, is_test), Some((open + 1, after.saturating_sub(1))))
            }
            None => (Vec::new(), None),
        };
        (self.mk(ItemKind::Trait, &name, path, vis, is_test, start, after, body, children), after)
    }

    /// The last path-segment identifier of a type header (`DetMap<K, V>` →
    /// `DetMap`, `zone::Iter` → `Iter`), stopping at generics or the body.
    fn type_name_in(&self, from: usize, to: usize) -> String {
        let mut name = String::new();
        let mut k = from;
        while k < to {
            match self.kind(k) {
                Some(TokenKind::Ident) if self.text(k) != "where" => {
                    name = self.text(k).to_string();
                    // A generic-args list ends the path segment.
                    if self.text(k + 1) == "<" {
                        break;
                    }
                    if self.text(k + 1) != "::" {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        name
    }

    /// Collects the identifier texts of an attribute starting just inside
    /// its `[`; returns them plus the index after the closing `]`.
    fn attr_idents(&self, from: usize, end: usize) -> (Vec<&'a str>, usize) {
        let mut idents = Vec::new();
        let mut depth = 1i32;
        let mut k = from;
        while k < end && depth > 0 {
            match self.text(k) {
                "[" => depth += 1,
                "]" => depth -= 1,
                _ => {
                    if self.kind(k) == Some(TokenKind::Ident) {
                        idents.push(&self.code[k].text[..]);
                    }
                }
            }
            k += 1;
        }
        (idents.iter().map(|s| &**s).collect(), k)
    }

    /// From `open` (which must be the opening delimiter), returns the index
    /// just after the matching closing delimiter.
    fn match_delim(&self, open: usize, end: usize, o: &str, c: &str) -> usize {
        let mut depth = 0i32;
        let mut k = open;
        while k < end {
            let t = self.text(k);
            if t == o {
                depth += 1;
            } else if t == c {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            k += 1;
        }
        end
    }

    /// Scans forward to the first `{` at `()`/`[]` depth 0 and brace-matches
    /// it (returning `(Some(open), after)`), or to a `;` at depth 0
    /// (returning `(None, after)`).
    fn skip_to_block_or_semi(&self, from: usize, end: usize) -> (Option<usize>, usize) {
        let mut depth = 0i32;
        let mut k = from;
        while k < end {
            match self.text(k) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                ";" if depth <= 0 => return (None, k + 1),
                "{" if depth <= 0 => return (Some(k), self.match_delim(k, end, "{", "}")),
                _ => {}
            }
            k += 1;
        }
        (None, end)
    }

    /// Scans to the terminating `;` at delimiter depth 0, brace-matching any
    /// intervening block (`const X: T = { … };`).
    fn skip_to_semi(&self, from: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut k = from;
        while k < end {
            match self.text(k) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => return k + 1,
                _ => {}
            }
            k += 1;
        }
        end
    }

    /// Renders tokens to the terminating `;` as a compact path string.
    fn to_semi_text(&self, from: usize, end: usize) -> (String, usize) {
        let mut text = String::new();
        let mut k = from;
        while k < end && self.text(k) != ";" {
            text.push_str(self.text(k));
            k += 1;
        }
        (text, (k + 1).min(end))
    }

    #[allow(clippy::too_many_arguments)]
    fn mk(&self, kind: ItemKind, name: &str, path: &str, vis: Visibility, is_test: bool, start: usize, after: usize, body: Option<(usize, usize)>, children: Vec<Item>) -> Item {
        let first = self.code.get(start);
        let last = self.code.get(after.saturating_sub(1));
        Item {
            kind,
            name: name.to_string(),
            qual: join(path, name),
            vis,
            is_test,
            line: first.map_or(0, |t| t.line),
            lo: first.map_or(0, |t| t.lo),
            hi: last.map_or(0, |t| t.hi),
            tok: (start, after.min(self.code.len())),
            body,
            children,
        }
    }
}

fn join(path: &str, name: &str) -> String {
    match (path.is_empty(), name.is_empty()) {
        (true, _) => name.to_string(),
        (_, true) => path.to_string(),
        _ => format!("{path}::{name}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Item> {
        let tokens = lex(src);
        let code = code_tokens(&tokens);
        parse_items(&code)
    }

    #[test]
    fn recovers_fn_struct_mod_use() {
        let items = parse(
            "use std::fmt;\n\
             pub struct Zone { lo: f64 }\n\
             pub fn area(z: &Zone) -> f64 { z.lo * 2.0 }\n\
             mod inner { pub(crate) fn helper() {} }\n",
        );
        let kinds: Vec<_> = items.iter().map(|i| (i.kind, i.name.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                (ItemKind::Use, "std::fmt"),
                (ItemKind::Struct, "Zone"),
                (ItemKind::Fn, "area"),
                (ItemKind::Mod, "inner"),
            ]
        );
        assert_eq!(items[2].vis, Visibility::Pub);
        assert_eq!(items[3].children.len(), 1);
        assert_eq!(items[3].children[0].qual, "inner::helper");
        assert_eq!(items[3].children[0].vis, Visibility::Scoped);
    }

    #[test]
    fn impl_methods_get_type_qualified_paths() {
        let items = parse(
            "impl<K: Ord> DetMap<K> {\n    pub fn get(&self) -> u32 { 0 }\n}\n\
             impl fmt::Display for SimTime {\n    fn fmt(&self) {}\n}\n",
        );
        assert_eq!(items[0].kind, ItemKind::Impl);
        assert_eq!(items[0].name, "DetMap");
        assert_eq!(items[0].children[0].qual, "DetMap::get");
        assert_eq!(items[1].name, "SimTime");
        assert_eq!(items[1].children[0].qual, "SimTime::fmt");
    }

    #[test]
    fn cfg_test_marks_whole_subtree() {
        let items = parse(
            "pub fn lib_fn() {}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n    fn helper() {}\n}\n",
        );
        assert!(!items[0].is_test);
        assert!(items[1].is_test);
        assert!(items[1].children.iter().all(|c| c.is_test));
    }

    #[test]
    fn fn_bodies_are_token_ranges() {
        let src = "fn f() { g(1); }";
        let tokens = lex(src);
        let code = code_tokens(&tokens);
        let items = parse_items(&code);
        let (lo, hi) = items[0].body.expect("fn has a body");
        let body: Vec<&str> = code[lo..hi].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(body, vec!["g", "(", "1", ")", ";"]);
    }

    #[test]
    fn const_fn_and_where_clauses() {
        let items = parse(
            "pub const fn origin() -> u64 { 0 }\n\
             pub const LIMIT: usize = 16;\n\
             pub fn generic<T>(x: T) -> T where T: Clone { x }\n\
             type Alias = u64;\n\
             static COUNT: u32 = 0;\n",
        );
        let kinds: Vec<_> = items.iter().map(|i| (i.kind, i.name.as_str())).collect();
        assert_eq!(
            kinds,
            vec![
                (ItemKind::Fn, "origin"),
                (ItemKind::Const, "LIMIT"),
                (ItemKind::Fn, "generic"),
                (ItemKind::TypeAlias, "Alias"),
                (ItemKind::Static, "COUNT"),
            ]
        );
    }

    #[test]
    fn spans_cover_every_code_token() {
        let src = "#![allow(dead_code)]\n// a comment gap\nuse std::fmt;\n\n/// doc\npub fn f() { 1 + 1; }\n#[cfg(test)]\nmod tests { fn t() {} }\n";
        let tokens = lex(src);
        let code = code_tokens(&tokens);
        let items = parse_items(&code);
        // Non-overlapping, increasing spans.
        for w in items.windows(2) {
            assert!(w[0].hi <= w[1].lo, "{:?} overlaps {:?}", w[0].qual, w[1].qual);
        }
        // Every code token owned by exactly one top-level item.
        for t in &code {
            let owners = items.iter().filter(|i| i.lo <= t.lo && t.hi <= i.hi).count();
            assert_eq!(owners, 1, "token {:?} at {} owned by {} items", t.text, t.lo, owners);
        }
    }
}
