//! Stable JSON findings report and the committed baseline.
//!
//! `tao-lint --json results/lint.json` serializes every finding with a
//! *stable key* — line-number-free for the structural rules, so the
//! baseline does not churn when unrelated edits shift code — and
//! `--baseline lint-baseline.json` diffs the current run against the
//! committed baseline:
//!
//! * a key whose count **grew** is a new finding → fix it (CI fails);
//! * a key whose count **shrank** is a stale entry → shrink the baseline
//!   (CI fails until the entry is removed — the baseline only ratchets
//!   down, never up).
//!
//! Serialization is hand-rolled (the workspace has no serde; see the
//! hermetic build policy) and the reader is a ~hundred-line JSON subset
//! parser — objects, arrays, strings, and unsigned integers — which is
//! all the schema needs.

use crate::rules::{Finding, ALL_RULES};
use std::collections::BTreeMap;

/// Escapes a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the findings report as deterministic, diff-friendly JSON:
/// findings sorted by (path, line, col, rule), then a per-rule summary.
pub fn render_json(findings: &[Finding], files_checked: usize) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort_by(|a, b| {
        (&a.path, a.line, a.col, a.rule.name()).cmp(&(&b.path, b.line, b.col, b.rule.name()))
    });
    let mut out = String::from("{\n  \"version\": 1,\n");
    out.push_str(&format!("  \"files_checked\": {files_checked},\n"));
    out.push_str("  \"findings\": [\n");
    for (i, f) in sorted.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"key\": \"{}\", \"message\": \"{}\"}}{}\n",
            f.rule.name(),
            esc(&f.path),
            f.line,
            f.col,
            esc(&f.key),
            esc(&f.message),
            if i + 1 == sorted.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"summary\": {\n");
    for (i, rule) in ALL_RULES.iter().enumerate() {
        let n = findings.iter().filter(|f| f.rule == *rule).count();
        out.push_str(&format!(
            "    \"{}\": {}{}\n",
            rule.name(),
            n,
            if i + 1 == ALL_RULES.len() { "" } else { "," }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Renders a baseline file from findings: sorted unique keys with counts.
pub fn render_baseline(findings: &[Finding]) -> String {
    let counts = key_counts(findings);
    let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
    let n = counts.len();
    for (i, (key, count)) in counts.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"key\": \"{}\", \"count\": {}}}{}\n",
            esc(key),
            count,
            if i + 1 == n { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Multiset of stable keys across findings.
pub fn key_counts(findings: &[Finding]) -> BTreeMap<String, u64> {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for f in findings {
        *counts.entry(f.key.clone()).or_insert(0) += 1;
    }
    counts
}

/// The outcome of diffing a run against the committed baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Keys (with excess counts) present now but not covered by the
    /// baseline: new findings that must be fixed.
    pub new: Vec<(String, u64)>,
    /// Baseline keys (with deficit counts) that no longer fire: stale
    /// entries that must be removed so the baseline shrinks.
    pub stale: Vec<(String, u64)>,
}

impl BaselineDiff {
    /// True when the run matches the baseline exactly.
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }

    /// A readable per-rule delta, suitable for CI output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let per_rule = |entries: &[(String, u64)]| -> BTreeMap<&'static str, u64> {
            let mut m: BTreeMap<&'static str, u64> = BTreeMap::new();
            for (key, n) in entries {
                let rule = key.split(':').next().unwrap_or("?");
                *m.entry(rule_label(rule)).or_insert(0) += n;
            }
            m
        };
        if !self.new.is_empty() {
            out.push_str("new findings not in the baseline (fix these; do NOT grow the baseline):\n");
            for (rule, n) in per_rule(&self.new) {
                out.push_str(&format!("  {rule}: +{n}\n"));
            }
            for (key, n) in &self.new {
                out.push_str(&format!("  + {key} (x{n})\n"));
            }
        }
        if !self.stale.is_empty() {
            out.push_str("stale baseline entries that no longer fire (remove them; the baseline only shrinks):\n");
            for (rule, n) in per_rule(&self.stale) {
                out.push_str(&format!("  {rule}: -{n}\n"));
            }
            for (key, n) in &self.stale {
                out.push_str(&format!("  - {key} (x{n})\n"));
            }
        }
        out
    }
}

fn rule_label(raw: &str) -> &'static str {
    for rule in ALL_RULES {
        if rule.name() == raw {
            return rule.name();
        }
    }
    "unknown-rule"
}

/// Diffs current findings against baseline entries.
pub fn diff_baseline(findings: &[Finding], baseline: &BTreeMap<String, u64>) -> BaselineDiff {
    let current = key_counts(findings);
    let mut diff = BaselineDiff::default();
    for (key, &n) in &current {
        let base = baseline.get(key).copied().unwrap_or(0);
        if n > base {
            diff.new.push((key.clone(), n - base));
        }
    }
    for (key, &base) in baseline {
        let n = current.get(key).copied().unwrap_or(0);
        if base > n {
            diff.stale.push((key.clone(), base - n));
        }
    }
    diff
}

/// Parses a baseline file produced by [`render_baseline`] (or edited by
/// hand): `{"version": 1, "entries": [{"key": "...", "count": N}, …]}`.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, u64>, String> {
    let value = JsonParser { bytes: text.as_bytes(), pos: 0 }.parse()?;
    let obj = value.as_object().ok_or("baseline root must be an object")?;
    let entries = obj
        .get("entries")
        .and_then(|v| v.as_array())
        .ok_or("baseline must have an \"entries\" array")?;
    let mut out = BTreeMap::new();
    for e in entries {
        let eo = e.as_object().ok_or("baseline entries must be objects")?;
        let key = eo
            .get("key")
            .and_then(|v| v.as_str())
            .ok_or("baseline entry missing string \"key\"")?;
        let count = eo
            .get("count")
            .and_then(|v| v.as_u64())
            .ok_or("baseline entry missing integer \"count\"")?;
        *out.entry(key.to_string()).or_insert(0) += count;
    }
    Ok(out)
}

/// A JSON subset value (all the report schema needs).
#[derive(Debug)]
pub enum Json {
    /// An object with string keys.
    Object(BTreeMap<String, Json>),
    /// An array.
    Array(Vec<Json>),
    /// A string.
    Str(String),
    /// An unsigned integer.
    Num(u64),
}

impl Json {
    fn as_object(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Object(m) => Some(m),
            _ => None,
        }
    }
    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(mut self) -> Result<Json, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing bytes at offset {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b) if b.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at offset {}", other.map(|b| *b as char), self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` in object, got {:?} at offset {}",
                        other.map(|b| *b as char),
                        self.pos
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` in array, got {:?} at offset {}",
                        other.map(|b| *b as char),
                        self.pos
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("unsupported escape {:?}", other.map(|b| *b as char)))
                        }
                    }
                    self.pos += 1;
                }
                Some(&b) => {
                    // Collect a run of plain bytes (keeps UTF-8 intact).
                    let start = self.pos;
                    let _ = b;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<u64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number at offset {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Rule;

    fn finding(rule: Rule, path: &str, line: u32, key: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            col: 1,
            key: key.to_string(),
            message: "msg with \"quotes\" and \\slash".to_string(),
        }
    }

    #[test]
    fn json_report_round_trips_through_the_parser() {
        let findings = vec![
            finding(Rule::CrateLayering, "b.rs", 2, "crate-layering:b.rs:tao-overlay->tao-sim"),
            finding(Rule::PanicReachability, "a.rs", 9, "panic-reachability:tao-core:sys::step"),
        ];
        let text = render_json(&findings, 3);
        let value = JsonParser { bytes: text.as_bytes(), pos: 0 }.parse().expect("report parses");
        let obj = value.as_object().expect("object root");
        assert_eq!(obj.get("version").and_then(Json::as_u64), Some(1));
        assert_eq!(obj.get("files_checked").and_then(Json::as_u64), Some(3));
        let arr = obj.get("findings").and_then(Json::as_array).expect("findings array");
        assert_eq!(arr.len(), 2);
        // Sorted by path: a.rs first.
        assert_eq!(
            arr[0].as_object().and_then(|o| o.get("path")).and_then(Json::as_str),
            Some("a.rs")
        );
        let summary = obj.get("summary").and_then(Json::as_object).expect("summary");
        assert_eq!(summary.get("crate-layering").and_then(Json::as_u64), Some(1));
        assert_eq!(summary.get("det-collections").and_then(Json::as_u64), Some(0));
    }

    #[test]
    fn baseline_round_trip_and_diff() {
        let old = vec![
            finding(Rule::PanicReachability, "a.rs", 1, "panic-reachability:tao-core:x"),
            finding(Rule::PanicReachability, "a.rs", 2, "panic-reachability:tao-core:y"),
        ];
        let baseline = parse_baseline(&render_baseline(&old)).expect("baseline parses");
        assert_eq!(baseline.len(), 2);

        // Identical run: clean.
        assert!(diff_baseline(&old, &baseline).is_clean());

        // One fixed, one new: both reported, in the right buckets.
        let new_run = vec![
            finding(Rule::PanicReachability, "a.rs", 2, "panic-reachability:tao-core:y"),
            finding(Rule::SeedDiscipline, "b.rs", 5, "seed-discipline:b.rs:mk_rng"),
        ];
        let diff = diff_baseline(&new_run, &baseline);
        assert_eq!(diff.new, vec![("seed-discipline:b.rs:mk_rng".to_string(), 1)]);
        assert_eq!(diff.stale, vec![("panic-reachability:tao-core:x".to_string(), 1)]);
        let rendered = diff.render();
        assert!(rendered.contains("seed-discipline: +1"));
        assert!(rendered.contains("panic-reachability: -1"));
    }

    #[test]
    fn duplicate_keys_count_as_multiset() {
        let two = vec![
            finding(Rule::CrateLayering, "c.rs", 1, "crate-layering:c.rs:tao-overlay->tao-sim"),
            finding(Rule::CrateLayering, "c.rs", 8, "crate-layering:c.rs:tao-overlay->tao-sim"),
        ];
        let baseline = parse_baseline(&render_baseline(&two)).expect("parses");
        assert_eq!(baseline.values().copied().sum::<u64>(), 2);
        let one = &two[..1];
        let diff = diff_baseline(one, &baseline);
        assert!(diff.new.is_empty());
        assert_eq!(diff.stale.len(), 1);
    }
}
