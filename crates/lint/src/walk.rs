//! Workspace traversal and file classification.

use std::fs;
use std::path::{Path, PathBuf};

use crate::rules::FileKind;

/// Classifies a workspace-relative `.rs` path into the [`FileKind`] the
/// rules engine needs.
///
/// - `crates/*/src/**` is library code, except `src/bin/**` and
///   `src/main.rs`, which are binaries.
/// - `examples/**` (top-level or per-crate) are binaries.
/// - `tests/**` and `benches/**` (top-level or per-crate) only ever run
///   inside test harnesses.
pub fn classify(path: &Path) -> FileKind {
    let comps: Vec<&str> = path
        .iter()
        .filter_map(|c| c.to_str())
        .collect();
    if comps.iter().any(|c| *c == "tests" || *c == "benches") {
        return FileKind::TestHarness;
    }
    if comps.iter().any(|c| *c == "examples" || *c == "bin") {
        return FileKind::Bin;
    }
    if comps.last() == Some(&"main.rs") {
        return FileKind::Bin;
    }
    FileKind::Lib
}

/// Collects every lintable `.rs` file under `root`, sorted, skipping
/// `target/`, VCS internals, and the linter's own violation fixtures.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    collect(root, &mut files)?;
    files.sort();
    Ok(files)
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name == ".git" || name == "lint_fixtures" {
                continue;
            }
            collect(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_layout() {
        let lib = Path::new("crates/overlay/src/can.rs");
        let binm = Path::new("crates/bench/src/bin/join_cost.rs");
        let test = Path::new("tests/end_to_end.rs");
        let bench = Path::new("crates/bench/benches/sec6.rs");
        let example = Path::new("examples/churn.rs");
        assert_eq!(classify(lib), FileKind::Lib);
        assert_eq!(classify(binm), FileKind::Bin);
        assert_eq!(classify(test), FileKind::TestHarness);
        assert_eq!(classify(bench), FileKind::TestHarness);
        assert_eq!(classify(example), FileKind::Bin);
    }
}
