//! Workspace traversal and file classification.
//!
//! Since v2 the file set is derived from the workspace manifest instead
//! of a blind directory walk: `Cargo.toml`'s `members` list (with
//! `crates/*` globs expanded) names the crates, each member's own
//! manifest names its package and any out-of-directory targets
//! (`[[test]] path = "../../tests/…"`), and only files that belong to a
//! member are linted. `target/`, `results/`, VCS internals, and the
//! linter's violation fixtures can never leak into the run because they
//! are not reachable from any manifest.

use std::fs;
use std::path::{Component, Path, PathBuf};

use crate::rules::FileKind;

/// One lintable file with its owning crate.
#[derive(Debug, Clone)]
pub struct WalkedFile {
    /// Workspace-relative path.
    pub path: PathBuf,
    /// Package name of the owning crate (`tao-overlay`).
    pub krate: String,
    /// How the file participates in linting.
    pub kind: FileKind,
}

/// Classifies a workspace-relative `.rs` path into the [`FileKind`] the
/// rules engine needs.
///
/// - `crates/*/src/**` is library code, except `src/bin/**` and
///   `src/main.rs`, which are binaries.
/// - `examples/**` (top-level or per-crate) are binaries.
/// - `tests/**` and `benches/**` (top-level or per-crate) only ever run
///   inside test harnesses.
pub fn classify(path: &Path) -> FileKind {
    let comps: Vec<&str> = path
        .iter()
        .filter_map(|c| c.to_str())
        .collect();
    if comps.iter().any(|c| *c == "tests" || *c == "benches") {
        return FileKind::TestHarness;
    }
    if comps.iter().any(|c| *c == "examples" || *c == "bin") {
        return FileKind::Bin;
    }
    if comps.last() == Some(&"main.rs") {
        return FileKind::Bin;
    }
    FileKind::Lib
}

/// Collects every lintable `.rs` file of every workspace member, with
/// its owning crate and kind, sorted by path.
///
/// The set is manifest-driven: workspace `members` globs are expanded
/// against directories that actually contain a `Cargo.toml`, each
/// member contributes its `src/`, `tests/`, `benches/`, and `examples/`
/// trees, plus any explicit `path = "…"` targets (which is how the
/// top-level `tests/` and `examples/` directories — owned by `tao-core`
/// — enter the run).
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<WalkedFile>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut out: Vec<WalkedFile> = Vec::new();
    let mut member_dirs: Vec<PathBuf> = Vec::new();
    for pattern in toml_members(&manifest) {
        if let Some(prefix) = pattern.strip_suffix("/*") {
            let dir = root.join(prefix);
            let mut expanded: Vec<PathBuf> = Vec::new();
            for entry in fs::read_dir(&dir)? {
                let entry = entry?;
                if entry.file_type()?.is_dir() && entry.path().join("Cargo.toml").is_file() {
                    expanded.push(Path::new(prefix).join(entry.file_name()));
                }
            }
            expanded.sort();
            member_dirs.extend(expanded);
        } else {
            member_dirs.push(PathBuf::from(pattern));
        }
    }

    for member in member_dirs {
        let member_manifest = fs::read_to_string(root.join(&member).join("Cargo.toml"))?;
        let Some(krate) = toml_package_name(&member_manifest) else {
            continue;
        };
        let mut paths: Vec<PathBuf> = Vec::new();
        for sub in ["src", "tests", "benches", "examples"] {
            let dir = root.join(&member).join(sub);
            if dir.is_dir() {
                let mut found = Vec::new();
                collect_rs(&dir, &mut found)?;
                for p in found {
                    let rel = p.strip_prefix(root).unwrap_or(&p).to_path_buf();
                    paths.push(rel);
                }
            }
        }
        for target in toml_target_paths(&member_manifest) {
            let rel = normalize(&member.join(target));
            if root.join(&rel).is_file() {
                paths.push(rel);
            }
        }
        paths.sort();
        paths.dedup();
        for path in paths {
            let kind = classify(&path);
            out.push(WalkedFile { path, krate: krate.clone(), kind });
        }
    }
    out.sort_by(|a, b| a.path.cmp(&b.path));
    out.dedup_by(|a, b| a.path == b.path);
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name == "results" || name == ".git" || name == "lint_fixtures" {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Resolves `.` and `..` components without touching the filesystem, so
/// `crates/core/../../tests/e.rs` becomes `tests/e.rs`.
fn normalize(path: &Path) -> PathBuf {
    let mut stack: Vec<Component> = Vec::new();
    for comp in path.components() {
        match comp {
            Component::CurDir => {}
            Component::ParentDir => {
                if stack.pop().is_none() {
                    stack.push(comp);
                }
            }
            other => stack.push(other),
        }
    }
    stack.iter().collect()
}

/// The `members = [...]` entries of the `[workspace]` section.
fn toml_members(manifest: &str) -> Vec<String> {
    let mut members = Vec::new();
    let mut in_workspace = false;
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_workspace = line == "[workspace]";
            in_members = false;
            continue;
        }
        if !in_workspace {
            continue;
        }
        let rest = if let Some(rest) = line.strip_prefix("members") {
            let Some(rest) = rest.trim_start().strip_prefix('=') else {
                continue;
            };
            in_members = true;
            rest
        } else if in_members {
            line
        } else {
            continue;
        };
        for piece in rest.split(',') {
            let piece = piece.trim().trim_matches(|c| c == '[' || c == ']').trim();
            if let Some(s) = piece.strip_prefix('"').and_then(|s| s.strip_suffix('"')) {
                members.push(s.to_string());
            }
        }
        if rest.contains(']') {
            in_members = false;
        }
    }
    members
}

/// The `name = "…"` of the `[package]` section.
fn toml_package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for line in manifest.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start().strip_prefix('=')?.trim();
                return rest
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .map(str::to_string);
            }
        }
    }
    None
}

/// Every `path = "…"` of the `[[test]]`/`[[bench]]`/`[[example]]`/
/// `[[bin]]` target sections (dependency tables never use array-of-table
/// headers, so `path` keys under `[dependencies]` are not collected).
fn toml_target_paths(manifest: &str) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut in_target = false;
    for line in manifest.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.starts_with('[') {
            in_target = line.starts_with("[[");
            continue;
        }
        if !in_target {
            continue;
        }
        if let Some(rest) = line.strip_prefix("path") {
            if let Some(rest) = rest.trim_start().strip_prefix('=') {
                if let Some(s) = rest
                    .trim()
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                {
                    out.push(PathBuf::from(s));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_layout() {
        let lib = Path::new("crates/overlay/src/can.rs");
        let binm = Path::new("crates/bench/src/bin/join_cost.rs");
        let test = Path::new("tests/end_to_end.rs");
        let bench = Path::new("crates/bench/benches/sec6.rs");
        let example = Path::new("examples/churn.rs");
        assert_eq!(classify(lib), FileKind::Lib);
        assert_eq!(classify(binm), FileKind::Bin);
        assert_eq!(classify(test), FileKind::TestHarness);
        assert_eq!(classify(bench), FileKind::TestHarness);
        assert_eq!(classify(example), FileKind::Bin);
    }

    #[test]
    fn normalize_resolves_parent_components() {
        assert_eq!(
            normalize(Path::new("crates/core/../../tests/e.rs")),
            PathBuf::from("tests/e.rs")
        );
        assert_eq!(normalize(Path::new("a/./b")), PathBuf::from("a/b"));
    }

    #[test]
    fn manifest_parsing_extracts_members_names_and_targets() {
        let ws = "[workspace]\nmembers = [\"crates/*\"]\nresolver = \"2\"\n";
        assert_eq!(toml_members(ws), vec!["crates/*".to_string()]);

        let multi = "[workspace]\nmembers = [\n  \"a\",\n  \"b/c\",\n]\n";
        assert_eq!(
            toml_members(multi),
            vec!["a".to_string(), "b/c".to_string()]
        );

        let member = "[package]\nname = \"tao-core\"\n\n[dependencies]\n\
                      tao-util = { path = \"../util\" }\n\n\
                      [[test]]\nname = \"e\"\npath = \"../../tests/e.rs\"\n";
        assert_eq!(toml_package_name(member), Some("tao-core".to_string()));
        // Dependency `path` keys are not targets.
        assert_eq!(
            toml_target_paths(member),
            vec![PathBuf::from("../../tests/e.rs")]
        );
    }
}
