//! The arith-safety pass: overflow/truncation discipline inside the hot
//! closure.
//!
//! The simulator keeps virtual time as `u64` microseconds. The
//! `SimTime`/`SimDuration` newtypes (crates/util/src/time.rs) make the
//! operators safe by construction — `+` saturates, `-` is
//! `checked_sub().expect(…)` as a bug detector — but the hot kernels
//! (wheel cursor math, routing index math) work on the *raw* integers
//! for speed, where a bare `+`/`-`/`*` wraps in release builds and a
//! narrowing `as`-cast silently truncates. This pass scans every
//! function in the `// tao-lint: hot` closure (see [`crate::alloc`]) for
//! three site kinds:
//!
//! * **time-arith** — a bare binary `+`/`-`/`*` (or compound `+=`-style)
//!   where an operand is time-flavored: an identifier ascribed
//!   `SimTime`/`SimDuration` in the function, a well-known raw-time name
//!   (`cursor`, `at`, `deadline`, `horizon`, …), or a value straight out
//!   of `.as_micros()`. A subtraction dominated by a comparison of the
//!   same operands (`if a < b { return; } … a - b`) is recognized as
//!   guarded, as are operands routed through `min`/`max`/`clamp` or the
//!   `saturating_`/`checked_` families.
//! * **truncating-cast** — `<expr> as u32`/`u16`/`u8`/`i32`/… where the
//!   source may be wider, unless the operand window shows a mask (`&`),
//!   modulo (`%`), `min`/`clamp`, or the function asserts a bound over
//!   the operand first.
//! * **index-arith** — arithmetic inside an index expression
//!   (`slots[level * SLOTS + slot]`) with no `%`/`min` bound in the
//!   bracket: the computed index can wrap before the bounds check fires.
//!
//! Findings anchor at the arithmetic site (line-free key
//! `arith-safety:<crate>:<file-stem>::<qual>:<kind>`) and carry the
//! witness chain from the hot entry, so the waiver pragma sits where a
//! reviewer can see both the arithmetic and the invariant that bounds
//! it. `crates/util/src/time.rs` itself is exempt: it *is* the
//! saturating implementation the rest of the workspace is steered
//! toward.

use crate::alloc::{hot_chain, HotReach};
use crate::graph::CallGraph;
use crate::items::Item;
use crate::lexer::{Token, TokenKind};
use crate::rules::{Finding, Rule};
use std::collections::BTreeMap;

/// Raw identifiers treated as time-carrying even without a type
/// ascription: the wheel/engine field names for `u64`-microsecond values.
const TIME_NAMES: [&str; 10] = [
    "cursor", "at", "deadline", "horizon", "expiry", "when", "wakeup", "window_end", "ttl",
    "as_micros",
];

/// Cast targets narrower than the workspace's `u64`/`usize` currencies.
const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Calls that bound an operand, discharging the overflow concern.
const BOUNDING_CALLS: [&str; 5] = ["min", "max", "clamp", "saturating_sub", "checked_sub"];

/// One arithmetic hazard inside a function.
#[derive(Debug, Clone)]
struct ArithSite {
    kind: &'static str,
    what: String,
    line: u32,
    col: u32,
}

/// Identifiers of the operand expression ending just before `op`,
/// walking backwards over `.`/`::` chains and balanced `(…)`/`[…]`
/// groups, stopping at any other expression boundary.
fn left_idents<'a>(code: &[&'a Token], lo: usize, op: usize) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut k = op;
    let mut steps = 0;
    while k > lo && steps < 32 {
        k -= 1;
        steps += 1;
        let t = code[k];
        match t.kind {
            TokenKind::Ident => out.push(t.text.as_str()),
            TokenKind::Number => {}
            TokenKind::Punct => match t.text.as_str() {
                ")" | "]" => {
                    let (open, close) = if t.text == ")" { ("(", ")") } else { ("[", "]") };
                    let mut depth = 1;
                    while k > lo && depth > 0 {
                        k -= 1;
                        steps += 1;
                        let u = code[k];
                        if u.kind == TokenKind::Punct {
                            if u.text == close {
                                depth += 1;
                            } else if u.text == open {
                                depth -= 1;
                            }
                        } else if u.kind == TokenKind::Ident {
                            out.push(u.text.as_str());
                        }
                    }
                }
                "." | "::" => {}
                _ => break,
            },
            _ => break,
        }
    }
    out
}

/// Identifiers of the operand expression starting just after `op`
/// (skipping the `=` of a compound assignment), mirroring
/// [`left_idents`].
fn right_idents<'a>(code: &[&'a Token], hi: usize, op: usize) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut k = op + 1;
    if code.get(k).is_some_and(|t| t.text == "=") {
        k += 1;
    }
    let mut steps = 0;
    while k < hi && steps < 32 {
        let t = code[k];
        match t.kind {
            TokenKind::Ident => out.push(t.text.as_str()),
            TokenKind::Number => {}
            TokenKind::Punct => match t.text.as_str() {
                "(" | "[" => {
                    let (open, close) = if t.text == "(" { ("(", ")") } else { ("[", "]") };
                    let mut depth = 1;
                    while k + 1 < hi && depth > 0 {
                        k += 1;
                        steps += 1;
                        let u = code[k];
                        if u.kind == TokenKind::Punct {
                            if u.text == open {
                                depth += 1;
                            } else if u.text == close {
                                depth -= 1;
                            }
                        } else if u.kind == TokenKind::Ident {
                            out.push(u.text.as_str());
                        }
                    }
                }
                "." | "::" | "&" | "!" => {}
                _ => break,
            },
            _ => break,
        }
        k += 1;
        steps += 1;
    }
    out
}

/// Identifier names ascribed `: SimTime` / `: SimDuration` anywhere in
/// the node's span (params and `let` bindings alike).
fn ascribed_time_names<'a>(code: &[&'a Token], lo: usize, hi: usize) -> Vec<&'a str> {
    let mut out = Vec::new();
    for i in lo..hi {
        if code[i].kind != TokenKind::Ident {
            continue;
        }
        if !matches!(code.get(i + 1), Some(t) if t.text == ":") {
            continue;
        }
        let mut k = i + 2;
        while k < hi && matches!(code[k].text.as_str(), "&" | "mut") {
            k += 1;
        }
        if code
            .get(k)
            .is_some_and(|t| t.text == "SimTime" || t.text == "SimDuration")
        {
            out.push(code[i].text.as_str());
        }
    }
    out
}

/// `true` if the comparison-guard pattern dominates the subtraction:
/// somewhere earlier in the body both operand sets appear around a
/// `<`/`>` comparison (`if e.at < self.cursor { return; } … e.at -
/// self.cursor`).
fn comparison_guarded(
    code: &[&Token],
    body_lo: usize,
    op: usize,
    lhs: &[&str],
    rhs: &[&str],
) -> bool {
    for g in body_lo..op {
        if code[g].kind != TokenKind::Punct || !matches!(code[g].text.as_str(), "<" | ">") {
            continue;
        }
        let from = g.saturating_sub(8).max(body_lo);
        let to = (g + 9).min(op);
        let around: Vec<&str> = code[from..to]
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        let has = |side: &[&str]| side.iter().any(|s| around.contains(s));
        if has(lhs) && has(rhs) {
            return true;
        }
    }
    false
}

/// `true` if the function asserts a bound over any of `ids` before
/// token index `op`.
fn assert_guarded(code: &[&Token], body_lo: usize, op: usize, ids: &[&str]) -> bool {
    for g in body_lo..op {
        if code[g].kind == TokenKind::Ident
            && (code[g].text == "assert" || code[g].text == "debug_assert")
            && matches!(code.get(g + 1), Some(t) if t.text == "!")
        {
            let to = (g + 20).min(op);
            if code[g..to]
                .iter()
                .any(|t| t.kind == TokenKind::Ident && ids.contains(&t.text.as_str()))
            {
                return true;
            }
        }
    }
    false
}

/// Scans a node's body for the three arith-safety site kinds.
fn scan_arith_sites(
    code: &[&Token],
    tok: (usize, usize),
    body: (usize, usize),
) -> Vec<ArithSite> {
    let (span_lo, span_hi) = (tok.0.min(code.len()), tok.1.min(code.len()));
    let (lo, hi) = (body.0.min(code.len()), body.1.min(code.len()));
    let ascribed = ascribed_time_names(code, span_lo, span_hi);
    let is_time = |name: &str| TIME_NAMES.contains(&name) || ascribed.contains(&name);
    let mut out = Vec::new();
    for i in lo..hi {
        let t = code[i];
        if t.kind != TokenKind::Punct {
            continue;
        }
        let text = |k: usize| code.get(i + k).map(|t| t.text.as_str()).unwrap_or("");
        match t.text.as_str() {
            // ---- time-arith: bare binary +/-/* on time-flavored operands.
            "+" | "-" | "*" => {
                let prev = if i > lo { Some(code[i - 1]) } else { None };
                let binary_left = prev.is_some_and(|p| {
                    p.kind == TokenKind::Ident
                        || p.kind == TokenKind::Number
                        || (p.kind == TokenKind::Punct && matches!(p.text.as_str(), ")" | "]"))
                });
                if !binary_left {
                    continue; // unary minus, deref, reference patterns
                }
                if t.text == "-" && text(1) == ">" {
                    continue; // `->` return-type arrow
                }
                let after = if text(1) == "=" { text(2) } else { text(1) };
                let binary_right = matches!(after, "(" | "&" | "!" | "self")
                    || code
                        .get(i + if text(1) == "=" { 2 } else { 1 })
                        .is_some_and(|n| {
                            n.kind == TokenKind::Ident || n.kind == TokenKind::Number
                        });
                if !binary_right {
                    continue;
                }
                let lhs = left_idents(code, lo, i);
                let rhs = right_idents(code, hi, i);
                if !lhs.iter().chain(rhs.iter()).any(|n| is_time(n)) {
                    continue;
                }
                let bounded = lhs
                    .iter()
                    .chain(rhs.iter())
                    .any(|n| BOUNDING_CALLS.contains(n) || n.starts_with("saturating_") || n.starts_with("checked_") || n.starts_with("wrapping_"));
                if bounded {
                    continue;
                }
                if t.text == "-" && comparison_guarded(code, lo, i, &lhs, &rhs) {
                    continue;
                }
                let op_name = match t.text.as_str() {
                    "+" => "addition",
                    "-" => "subtraction",
                    _ => "multiplication",
                };
                out.push(ArithSite {
                    kind: "time-arith",
                    what: format!(
                        "applies unguarded {op_name} `{}` to time-carrying value(s)",
                        t.text
                    ),
                    line: t.line,
                    col: t.col,
                });
            }
            _ => {}
        }
    }
    // ---- truncating-cast: `<expr> as u32`-narrowing without a bound.
    for i in lo..hi {
        let t = code[i];
        if t.kind != TokenKind::Ident || t.text != "as" {
            continue;
        }
        let Some(target) = code.get(i + 1) else { continue };
        if !NARROW_INTS.contains(&target.text.as_str()) {
            continue;
        }
        let prev = if i > lo { Some(code[i - 1]) } else { None };
        // A literal cast (`7 as u32`) cannot truncate anything unknown.
        let castable = prev.is_some_and(|p| {
            p.kind == TokenKind::Ident
                || (p.kind == TokenKind::Punct && matches!(p.text.as_str(), ")" | "]"))
        });
        if !castable {
            continue;
        }
        let lhs = left_idents(code, lo, i);
        let masked = lhs.iter().any(|n| BOUNDING_CALLS.contains(n))
            || code[i.saturating_sub(10).max(lo)..i].iter().any(|t| {
                t.kind == TokenKind::Punct && matches!(t.text.as_str(), "%" | "&")
            });
        if masked || assert_guarded(code, lo, i, &lhs) {
            continue;
        }
        out.push(ArithSite {
            kind: "truncating-cast",
            what: format!("narrows with `as {}` and no visible bound", target.text),
            line: t.line,
            col: t.col,
        });
    }
    // ---- index-arith: +/-/* inside an index bracket with no bound.
    for i in lo..hi {
        let t = code[i];
        if t.kind != TokenKind::Punct || t.text != "[" {
            continue;
        }
        let is_index = i > lo
            && (code[i - 1].kind == TokenKind::Ident
                || (code[i - 1].kind == TokenKind::Punct
                    && matches!(code[i - 1].text.as_str(), ")" | "]" | "?")));
        if !is_index {
            continue;
        }
        let mut depth = 1;
        let mut j = i + 1;
        let mut has_arith = false;
        let mut has_bound = false;
        while j < hi && depth > 0 {
            let u = code[j];
            if u.kind == TokenKind::Punct {
                match u.text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "+" | "-" | "*" if depth == 1 => {
                        let bin = code[j - 1].kind == TokenKind::Ident
                            || code[j - 1].kind == TokenKind::Number
                            || matches!(code[j - 1].text.as_str(), ")" | "]");
                        if bin {
                            has_arith = true;
                        }
                    }
                    "%" => has_bound = true,
                    _ => {}
                }
            } else if u.kind == TokenKind::Ident
                && (BOUNDING_CALLS.contains(&u.text.as_str()) || u.text.starts_with("saturating_"))
            {
                has_bound = true;
            }
            j += 1;
        }
        if has_arith && !has_bound {
            out.push(ArithSite {
                kind: "index-arith",
                what: "computes an index with unbounded arithmetic inside `[…]`".to_string(),
                line: t.line,
                col: t.col,
            });
        }
    }
    out
}

/// Runs the arith-safety pass over the hot closure: one finding per
/// `(function, site kind)`, anchored at the first site of that kind.
pub fn arith_findings(
    graph: &CallGraph,
    files: &[(String, String, Vec<&Token>, Vec<Item>)],
    hot: &[Option<HotReach>],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        let Some(reach) = hot.get(i).and_then(|r| r.as_ref()) else {
            continue;
        };
        // time.rs *is* the saturating implementation; its operators are
        // the safe alternative this rule recommends.
        if node.path.ends_with("util/src/time.rs") {
            continue;
        }
        let Some(body) = node.body else { continue };
        let code = &files[node.file].2;
        let sites = scan_arith_sites(code, node.tok, body);
        if sites.is_empty() {
            continue;
        }
        let mut per_kind: BTreeMap<&'static str, &ArithSite> = BTreeMap::new();
        for s in &sites {
            per_kind.entry(s.kind).or_insert(s);
        }
        let stem = node
            .path
            .rsplit('/')
            .next()
            .and_then(|f| f.strip_suffix(".rs"))
            .unwrap_or("?");
        let entry = &graph.nodes[reach.entry];
        let chain = hot_chain(graph, hot, i);
        let via = if chain.len() > 1 {
            format!(" via {}", chain.join(" → "))
        } else {
            String::new()
        };
        for site in per_kind.values() {
            out.push(Finding {
                rule: Rule::ArithSafety,
                path: node.path.clone(),
                line: site.line,
                col: site.col,
                key: format!(
                    "arith-safety:{}:{}::{}:{}",
                    node.krate, stem, node.qual, site.kind
                ),
                message: format!(
                    "fn `{}` {} inside the hot closure of `{}`{}; use \
                     saturating/checked arithmetic or a proven bound, or \
                     acknowledge the invariant with `// tao-lint: \
                     allow(arith-safety, reason = \"...\")` at the site",
                    node.qual, site.what, entry.qual, via
                ),
            });
        }
    }
    out
}
