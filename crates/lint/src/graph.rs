//! An approximate cross-crate call graph over the recovered items.
//!
//! Nodes are non-test functions in library files; edges are name-based
//! call references recovered from the token stream: `free_fn(…)`,
//! `Type::method(…)`, and `.method(…)`. Resolution is deliberately
//! *over*-approximate — an unqualified method call links to every
//! workspace method of that name — because the consumer is the
//! panic-reachability rule, where a false edge at worst asks for a
//! justification and a missed edge hides a panic path. Two filters keep
//! the over-approximation from degenerating into noise:
//!
//! - `.method(…)` calls whose name shadows a std-prelude method
//!   ([`STD_METHODS`]: `len`, `map`, `contains`, …) get no edges — on
//!   real code such calls overwhelmingly target std/`tao_util` types,
//!   and linking them to every same-name workspace method would make
//!   nearly every function "reach" every panic. Workspace methods with
//!   those names are still analyzed directly and via `Type::method(…)`
//!   qualified calls.
//! - Edges must respect the crate-layering DAG ([`crate::rules::LAYERS`]):
//!   a `tao-softstate` function cannot actually be calling into
//!   `tao-lint`, so no edge is created.
//!
//! Panic sites are `.unwrap(` / `.expect(`, the panicking macros
//! (`panic!`, `unreachable!`, `todo!`, `unimplemented!`), and
//! indexing-panic sites (`expr[…]` where the `[` follows an identifier,
//! `)`, `]`, or `?`).

use crate::items::{Item, ItemKind, Visibility};
use crate::lexer::{Token, TokenKind};
use crate::rules::LAYERS;

/// Method names that shadow ubiquitous std-prelude methods: unqualified
/// `.name(…)` calls with these names are not linked to workspace methods
/// (see the module docs for why).
pub const STD_METHODS: [&str; 71] = [
    "first", "last", "keys", "values", "copied", "cloned", "drain",
    "map", "and_then", "or_else", "unwrap_or", "unwrap_or_else", "unwrap_or_default", "ok",
    "ok_or", "ok_or_else", "err", "filter", "filter_map", "flat_map", "fold", "for_each",
    "collect", "iter", "iter_mut", "into_iter", "next", "len", "is_empty", "contains",
    "contains_key", "insert", "remove", "get", "get_mut", "push", "pop", "clear", "extend",
    "sort", "sort_by", "sort_by_key", "sort_unstable", "sort_unstable_by", "min", "max",
    "min_by", "max_by", "min_by_key", "max_by_key", "sum", "count", "clone", "to_string",
    "to_owned", "as_ref", "as_mut", "as_str", "as_slice", "take", "replace", "position",
    "find", "any", "all", "zip", "rev", "skip", "chain", "enumerate", "retain",
];

/// Whether the layering DAG permits a call from `caller` into `callee`.
/// Unknown crates (synthetic fixtures) are unconstrained.
fn layering_allows(caller: &str, callee: &str) -> bool {
    if caller == callee {
        return true;
    }
    match LAYERS.iter().find(|(name, _)| *name == caller) {
        Some((_, allowed)) => allowed.contains(&callee),
        None => true,
    }
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallRef {
    /// `name(…)` — a free call.
    Free(String),
    /// `Qual::name(…)` — a qualified call; `0` is the last qualifier
    /// segment (`StdRng::seed_from_u64` → `("StdRng", "seed_from_u64")`).
    Qualified(String, String),
    /// `.name(…)` — a method call on an unknown receiver.
    Method(String),
}

/// What kind of panic a site is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PanicKind {
    /// `.unwrap(`.
    Unwrap,
    /// `.expect(`.
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    Macro,
    /// `expr[…]` indexing, which panics out of bounds.
    Index,
}

impl PanicKind {
    /// Human-readable site description.
    pub fn describe(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "`.unwrap()`",
            PanicKind::Expect => "`.expect(…)`",
            PanicKind::Macro => "a panicking macro",
            PanicKind::Index => "`[…]` indexing",
        }
    }
}

/// A potential panic inside a function body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// The site's kind.
    pub kind: PanicKind,
    /// 1-based line within the containing file.
    pub line: u32,
}

/// One function node in the workspace call graph.
#[derive(Debug)]
pub struct FnNode {
    /// Crate the function lives in (`tao-overlay`).
    pub krate: String,
    /// Workspace-relative file path.
    pub path: String,
    /// Index of the owning file in the slice given to
    /// [`CallGraph::build`]; the dataflow passes use it to re-scan the
    /// node's tokens.
    pub file: usize,
    /// `::`-qualified name within the file (`CanOverlay::join`).
    pub qual: String,
    /// Simple name (`join`).
    pub name: String,
    /// Enclosing impl/trait type, if the function is a method.
    pub type_name: Option<String>,
    /// Declared visibility.
    pub vis: Visibility,
    /// 1-based line of the item.
    pub line: u32,
    /// Code-token span of the whole item (signature included), indexing
    /// the owning file's code tokens.
    pub tok: (usize, usize),
    /// Code-token span of the body, if the function has one.
    pub body: Option<(usize, usize)>,
    /// Direct panic sites in the body.
    pub sites: Vec<PanicSite>,
    /// Call references out of the body.
    pub calls: Vec<CallRef>,
    /// Absolute code-token index of each call's name token, aligned with
    /// `calls`.
    pub call_pos: Vec<usize>,
}

/// The workspace call graph plus panic-reachability results.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All function nodes, in deterministic (file, line) order.
    pub nodes: Vec<FnNode>,
    edges: Vec<Vec<usize>>,
    /// Per node, per call ref (aligned with `FnNode::calls`): the
    /// resolved target nodes after the layering filter.
    call_targets: Vec<Vec<Vec<usize>>>,
    /// For each node: the nearest panic site it can reach, as
    /// `(hops, node index owning the site, site index)`; `None` if the
    /// node cannot reach a panic site.
    reach: Vec<Option<(u32, usize, usize)>>,
}

impl CallGraph {
    /// Builds the graph from per-file parsed items. Each entry is
    /// `(crate, path, code_tokens, items)`; only non-test `fn` items are
    /// added as nodes.
    pub fn build(files: &[(String, String, Vec<&Token>, Vec<Item>)]) -> CallGraph {
        let mut g = CallGraph::default();
        for (fi, (krate, path, code, items)) in files.iter().enumerate() {
            for item in items {
                collect_fns(krate, path, fi, code, item, None, &mut g.nodes);
            }
        }
        g.nodes.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
        g.resolve();
        g.propagate();
        g
    }

    /// The resolved outgoing edges of node `i`, sorted and deduplicated.
    pub fn callees(&self, i: usize) -> &[usize] {
        &self.edges[i]
    }

    /// The resolved targets of each call ref of node `i`, aligned with
    /// `nodes[i].calls` / `nodes[i].call_pos`.
    pub fn call_targets(&self, i: usize) -> &[Vec<usize>] {
        &self.call_targets[i]
    }

    /// Resolves every node's call refs into edge lists.
    fn resolve(&mut self) {
        use std::collections::BTreeMap;
        // name → node indices, split by whether the fn is a method.
        let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut frees: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut typed: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        for (i, n) in self.nodes.iter().enumerate() {
            match &n.type_name {
                Some(t) => {
                    methods.entry(&n.name).or_default().push(i);
                    typed.entry((t.as_str(), n.name.as_str())).or_default().push(i);
                }
                None => frees.entry(&n.name).or_default().push(i),
            }
        }
        self.edges = vec![Vec::new(); self.nodes.len()];
        self.call_targets = vec![Vec::new(); self.nodes.len()];
        for i in 0..self.nodes.len() {
            let mut out: Vec<usize> = Vec::new();
            let mut per_call: Vec<Vec<usize>> = Vec::with_capacity(self.nodes[i].calls.len());
            for call in &self.nodes[i].calls {
                let mut targets: Vec<usize> = Vec::new();
                match call {
                    CallRef::Free(name) => {
                        if let Some(ids) = frees.get(name.as_str()) {
                            // Prefer same-file free fns, then same-crate,
                            // then anything sharing the name.
                            let same_file: Vec<usize> = ids
                                .iter()
                                .copied()
                                .filter(|&j| self.nodes[j].path == self.nodes[i].path)
                                .collect();
                            let same_crate: Vec<usize> = ids
                                .iter()
                                .copied()
                                .filter(|&j| self.nodes[j].krate == self.nodes[i].krate)
                                .collect();
                            let chosen = if !same_file.is_empty() {
                                same_file
                            } else if !same_crate.is_empty() {
                                same_crate
                            } else {
                                ids.clone()
                            };
                            targets.extend(chosen);
                        }
                    }
                    CallRef::Qualified(q, name) => {
                        // `Self::helper(…)` names the caller's own impl
                        // type; substitute it so the call resolves like an
                        // explicit `Type::helper(…)`.
                        let q = if q == "Self" {
                            self.nodes[i].type_name.as_deref().unwrap_or(q.as_str())
                        } else {
                            q.as_str()
                        };
                        if let Some(ids) = typed.get(&(q, name.as_str())) {
                            targets.extend(ids.iter().copied());
                        }
                        // A lowercase qualifier may be a module path
                        // (`zone::split`): link matching free fns too.
                        if q.chars().next().is_some_and(|c| c.is_lowercase()) {
                            if let Some(ids) = frees.get(name.as_str()) {
                                targets.extend(ids.iter().copied());
                            }
                        }
                    }
                    CallRef::Method(name) => {
                        if !STD_METHODS.contains(&name.as_str()) {
                            if let Some(ids) = methods.get(name.as_str()) {
                                targets.extend(ids.iter().copied());
                            }
                        }
                    }
                }
                targets.retain(|&j| layering_allows(&self.nodes[i].krate, &self.nodes[j].krate));
                targets.sort_unstable();
                targets.dedup();
                out.extend(targets.iter().copied());
                per_call.push(targets);
            }
            out.sort_unstable();
            out.dedup();
            self.edges[i] = out;
            self.call_targets[i] = per_call;
        }
    }

    /// Computes, for every node, the nearest reachable panic site by BFS
    /// from the panic-carrying nodes over reversed edges.
    fn propagate(&mut self) {
        let n = self.nodes.len();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, outs) in self.edges.iter().enumerate() {
            for &j in outs {
                rev[j].push(i);
            }
        }
        self.reach = vec![None; n];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        // Seed: nodes with a direct site (hops 0, their own first site).
        for i in 0..n {
            if !self.nodes[i].sites.is_empty() {
                self.reach[i] = Some((0, i, 0));
                queue.push_back(i);
            }
        }
        while let Some(j) = queue.pop_front() {
            let (hops, owner, site) = self.reach[j].expect("queued nodes are marked"); // tao-lint: allow(no-unwrap-in-lib, reason = "queued nodes are marked before push")
            for &i in &rev[j] {
                if self.reach[i].is_none() {
                    self.reach[i] = Some((hops + 1, owner, site));
                    queue.push_back(i);
                }
            }
        }
    }

    /// The nearest panic site reachable from node `i`, if any, with a
    /// deterministic witness call chain of `qual` names.
    pub fn reachable_panic(&self, i: usize) -> Option<(Vec<String>, &FnNode, &PanicSite)> {
        let (_, owner, _site) = self.reach[i]?;
        // Rebuild the witness chain by walking forward edges, always
        // stepping to a neighbor strictly closer to a panic site.
        let mut chain = vec![self.nodes[i].qual.clone()];
        let mut cur = i;
        let mut guard = 0;
        while cur != owner && self.nodes[cur].sites.is_empty() && guard < 64 {
            let cur_d = self.reach[cur].map(|(d, _, _)| d).unwrap_or(u32::MAX);
            let next = self.edges[cur]
                .iter()
                .copied()
                .filter(|&j| self.reach[j].is_some_and(|(d, _, _)| d < cur_d))
                .min_by_key(|&j| (self.reach[j].map(|(d, _, _)| d), j));
            match next {
                Some(j) => {
                    chain.push(self.nodes[j].qual.clone());
                    cur = j;
                }
                None => break,
            }
            guard += 1;
        }
        let owner_node = &self.nodes[cur];
        let site = owner_node.sites.first()?;
        Some((chain, owner_node, site))
    }

    /// Generic reverse-BFS: for every node, the nearest seed node it can
    /// reach over forward edges, as `(hops, seed index)`. `seed[i]` marks
    /// the target set; a seed node reaches itself in 0 hops. This is the
    /// same propagation panic-reachability uses, reusable by the dataflow
    /// passes (taint sinks reaching taint sources).
    pub fn reach_from(&self, seed: &[bool]) -> Vec<Option<(u32, usize)>> {
        let n = self.nodes.len();
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, outs) in self.edges.iter().enumerate() {
            for &j in outs {
                rev[j].push(i);
            }
        }
        let mut reach: Vec<Option<(u32, usize)>> = vec![None; n];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for i in 0..n {
            if seed.get(i).copied().unwrap_or(false) {
                reach[i] = Some((0, i));
                queue.push_back(i);
            }
        }
        while let Some(j) = queue.pop_front() {
            let (hops, owner) = reach[j].expect("queued nodes are marked"); // tao-lint: allow(no-unwrap-in-lib, reason = "queued nodes are marked before push")
            for &i in &rev[j] {
                if reach[i].is_none() {
                    reach[i] = Some((hops + 1, owner));
                    queue.push_back(i);
                }
            }
        }
        reach
    }

    /// A deterministic witness chain from `start` to a seed node, given a
    /// `reach_from` result: walks forward edges, always stepping to a
    /// neighbor strictly closer to a seed. Returns the chain of `qual`
    /// names and the final node index (a seed node when one is
    /// reachable).
    pub fn witness_chain(
        &self,
        start: usize,
        seed: &[bool],
        reach: &[Option<(u32, usize)>],
    ) -> (Vec<String>, usize) {
        let mut chain = vec![self.nodes[start].qual.clone()];
        let mut cur = start;
        let mut guard = 0;
        while !seed.get(cur).copied().unwrap_or(false) && guard < 64 {
            let cur_d = reach[cur].map(|(d, _)| d).unwrap_or(u32::MAX);
            let next = self.edges[cur]
                .iter()
                .copied()
                .filter(|&j| reach[j].is_some_and(|(d, _)| d < cur_d))
                .min_by_key(|&j| (reach[j].map(|(d, _)| d), j));
            match next {
                Some(j) => {
                    chain.push(self.nodes[j].qual.clone());
                    cur = j;
                }
                None => break,
            }
            guard += 1;
        }
        (chain, cur)
    }
}

/// Recursively collects `fn` items into graph nodes, scanning bodies for
/// calls and panic sites.
fn collect_fns(
    krate: &str,
    path: &str,
    file: usize,
    code: &[&Token],
    item: &Item,
    enclosing_type: Option<&str>,
    out: &mut Vec<FnNode>,
) {
    if item.is_test {
        return;
    }
    match item.kind {
        ItemKind::Fn => {
            let (sites, calls, call_pos) = match item.body {
                Some((lo, hi)) => {
                    let lo = lo.min(code.len());
                    scan_body(&code[lo..hi.min(code.len())], lo)
                }
                None => (Vec::new(), Vec::new(), Vec::new()),
            };
            out.push(FnNode {
                krate: krate.to_string(),
                path: path.to_string(),
                file,
                qual: item.qual.clone(),
                name: item.name.clone(),
                type_name: enclosing_type.map(str::to_string),
                vis: item.vis,
                line: item.line,
                tok: item.tok,
                body: item.body,
                sites,
                calls,
                call_pos,
            });
        }
        ItemKind::Impl | ItemKind::Trait => {
            for c in &item.children {
                collect_fns(krate, path, file, code, c, Some(&item.name), out);
            }
        }
        ItemKind::Mod => {
            for c in &item.children {
                collect_fns(krate, path, file, code, c, None, out);
            }
        }
        _ => {}
    }
}

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];
const NOT_CALLS: [&str; 12] = [
    "if", "while", "for", "match", "return", "loop", "fn", "let", "in", "as", "move", "else",
];

/// Scans a function body's code tokens for panic sites and call refs.
/// `base` is the body's starting index in the file's code tokens, so
/// recorded call positions are absolute.
fn scan_body(body: &[&Token], base: usize) -> (Vec<PanicSite>, Vec<CallRef>, Vec<usize>) {
    let mut sites = Vec::new();
    let mut calls = Vec::new();
    let mut call_pos = Vec::new();
    for (i, t) in body.iter().enumerate() {
        let next = |k: usize| body.get(i + k).map(|t| t.text.as_str()).unwrap_or("");
        let prev = if i > 0 { Some(body[i - 1]) } else { None };
        match t.kind {
            TokenKind::Ident => {
                let name = t.text.as_str();
                if next(1) == "!" && PANIC_MACROS.contains(&name) {
                    sites.push(PanicSite { kind: PanicKind::Macro, line: t.line });
                    continue;
                }
                if next(1) != "(" || NOT_CALLS.contains(&name) {
                    continue;
                }
                // `.name(` — method call; `Qual::name(` — qualified call;
                // bare `name(` — free call.
                let prev_text = prev.map(|p| p.text.as_str());
                match prev_text {
                    Some(".") => match name {
                        "unwrap" => sites.push(PanicSite { kind: PanicKind::Unwrap, line: t.line }),
                        "expect" => sites.push(PanicSite { kind: PanicKind::Expect, line: t.line }),
                        _ => {
                            calls.push(CallRef::Method(name.to_string()));
                            call_pos.push(base + i);
                        }
                    },
                    Some("::") => {
                        let qual = ufcs_qual(body, i).unwrap_or_else(|| {
                            body.get(i.wrapping_sub(2))
                                .filter(|q| q.kind == TokenKind::Ident)
                                .map(|q| q.text.clone())
                                .unwrap_or_default()
                        });
                        calls.push(CallRef::Qualified(qual, name.to_string()));
                        call_pos.push(base + i);
                    }
                    _ => {
                        calls.push(CallRef::Free(name.to_string()));
                        call_pos.push(base + i);
                    }
                }
            }
            TokenKind::Punct if t.text == "[" => {
                // Indexing: `[` following an ident, `)`, `]`, or `?` is an
                // index expression (an out-of-bounds panic site). `#[`
                // attributes and array literals never match.
                if prev.is_some_and(|p| {
                    p.kind == TokenKind::Ident
                        || (p.kind == TokenKind::Punct
                            && matches!(p.text.as_str(), ")" | "]" | "?"))
                }) {
                    sites.push(PanicSite { kind: PanicKind::Index, line: t.line });
                }
            }
            _ => {}
        }
    }
    (sites, calls, call_pos)
}

/// For a call ident at `i` whose previous token is `::`: if the
/// qualifier is a UFCS form `<Type as Trait>::name(…)` (or plain
/// `<Type>::name(…)`), back-scans the matching angle brackets and
/// returns the concrete type — the first identifier after the opening
/// `<` — so the call resolves against the impl type like a plain
/// `Type::name(…)` would.
fn ufcs_qual(body: &[&Token], i: usize) -> Option<String> {
    let close = i.checked_sub(2)?;
    if body.get(close)?.text != ">" {
        return None;
    }
    let mut depth = 0i32;
    let mut k = close;
    loop {
        match body.get(k)?.text.as_str() {
            ">" => depth += 1,
            "<" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        if k == 0 {
            return None;
        }
        k -= 1;
    }
    // First identifier after the opening `<` is the concrete type.
    body[k + 1..close]
        .iter()
        .find(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::{code_tokens, parse_items};
    use crate::lexer::lex;

    fn graph(files: &[(&str, &str, &str)]) -> CallGraph {
        let mut owned: Vec<(String, String, Vec<Token>)> = Vec::new();
        for (krate, path, src) in files {
            owned.push((krate.to_string(), path.to_string(), lex(src)));
        }
        let built: Vec<(String, String, Vec<&Token>, Vec<Item>)> = owned
            .iter()
            .map(|(krate, path, tokens)| {
                let code = code_tokens(tokens);
                let items = parse_items(&code);
                (krate.clone(), path.clone(), code, items)
            })
            .collect();
        CallGraph::build(&built)
    }

    fn node<'g>(g: &'g CallGraph, qual: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.qual == qual)
            .unwrap_or_else(|| panic!("no node {qual}"))
    }

    #[test]
    fn direct_and_transitive_panic_reachability() {
        let g = graph(&[(
            "tao-overlay",
            "crates/overlay/src/a.rs",
            "pub fn entry() { helper(); }\n\
             fn helper() { leaf(); }\n\
             fn leaf(x: Option<u32>) { x.unwrap(); }\n\
             pub fn safe() { pure(); }\n\
             fn pure() -> u32 { 1 + 1 }\n",
        )]);
        let entry = node(&g, "entry");
        let (chain, owner, site) = g.reachable_panic(entry).expect("entry reaches a panic");
        assert_eq!(chain, vec!["entry", "helper", "leaf"]);
        assert_eq!(owner.qual, "leaf");
        assert_eq!(site.kind, PanicKind::Unwrap);
        assert!(g.reachable_panic(node(&g, "safe")).is_none());
    }

    #[test]
    fn method_calls_link_across_crates() {
        let g = graph(&[
            (
                "tao-softstate",
                "crates/softstate/src/m.rs",
                "pub struct Map;\nimpl Map {\n    pub fn probe(&self, i: usize) -> u32 { self.slots[i] }\n}\n",
            ),
            (
                "tao-core",
                "crates/core/src/s.rs",
                "pub fn lookup(m: &Map) -> u32 { m.probe(3) }\n",
            ),
        ]);
        let (chain, _, site) = g
            .reachable_panic(node(&g, "lookup"))
            .expect("lookup reaches Map::probe's indexing");
        assert_eq!(chain, vec!["lookup", "Map::probe"]);
        assert_eq!(site.kind, PanicKind::Index);
    }

    #[test]
    fn self_qualified_calls_resolve_to_the_impl_type() {
        // `Self::helper()` must link to `Map::helper` — before the fix
        // the qualifier "Self" matched no impl type and the edge (and
        // the panic path behind it) was silently dropped.
        let g = graph(&[(
            "tao-overlay",
            "crates/overlay/src/s.rs",
            "pub struct Map;\n\
             impl Map {\n\
                 pub fn entry(&self) -> u32 { Self::helper(3) }\n\
                 fn helper(i: usize) -> u32 { SLOTS[i] }\n\
             }\n",
        )]);
        let (chain, _, site) = g
            .reachable_panic(node(&g, "Map::entry"))
            .expect("Self::helper edge must carry the panic path");
        assert_eq!(chain, vec!["Map::entry", "Map::helper"]);
        assert_eq!(site.kind, PanicKind::Index);
    }

    #[test]
    fn ufcs_calls_resolve_to_the_concrete_type() {
        // `<Map as Probe>::probe(…)` must link to `Map::probe` exactly
        // like `Map::probe(…)` — the back-scan over the angle brackets
        // recovers the concrete type.
        let g = graph(&[
            (
                "tao-softstate",
                "crates/softstate/src/m.rs",
                "pub struct Map;\nimpl Probe for Map {\n    fn probe(&self, i: usize) -> u32 { self.slots[i] }\n}\n",
            ),
            (
                "tao-core",
                "crates/core/src/u.rs",
                "pub fn lookup(m: &Map) -> u32 { <Map as Probe>::probe(m, 3) }\n",
            ),
        ]);
        let (chain, _, site) = g
            .reachable_panic(node(&g, "lookup"))
            .expect("UFCS edge must carry the panic path");
        assert_eq!(chain, vec!["lookup", "Map::probe"]);
        assert_eq!(site.kind, PanicKind::Index);
    }

    #[test]
    fn panic_macros_and_test_fns() {
        let g = graph(&[(
            "tao-sim",
            "crates/sim/src/e.rs",
            "pub fn step() { unreachable!() }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { panic!() }\n}\n",
        )]);
        assert!(g.reachable_panic(node(&g, "step")).is_some());
        assert!(!g.nodes.iter().any(|n| n.qual.contains("tests")));
    }
}
