//! The concurrency pass: a lock-acquisition graph over
//! `Mutex::lock`/`RwLock::read`/`RwLock::write`/`Condvar::wait` sites,
//! plus the poisoning-escape and shared-capture rules.
//!
//! Lock identity is `(file-stem, receiver name)` — `self.in_flight`
//! inside `shortest_path.rs` is the lock `shortest_path.in_flight`
//! everywhere it appears — which keeps keys line-free and stable across
//! edits. Guard lifetimes are approximated from the token stream:
//!
//! * a `let`-bound guard is held to the end of its enclosing block;
//! * a guard born in an `if`/`while`/`match` condition is held through
//!   that construct's block (Rust extends such temporaries to the end of
//!   the whole statement);
//! * any other temporary is held to its statement's `;`.
//!
//! An acquisition B inside the hold range of A yields the order edge
//! `A → B`; a *call* inside a hold range pulls in every lock the callee
//! transitively acquires (computed as a fixpoint over the call graph)
//! and — because a callee that blocks on a lock while we pin one is the
//! classic re-entrancy deadlock — also fires `lock-across-call`. A cycle
//! among the order edges is a `lock-order-cycle` finding listing every
//! edge with its provenance. `lock-poison` flags `.lock().unwrap()` /
//! `.expect(…)` escapes (the sanctioned recovery is
//! `unwrap_or_else(|p| p.into_inner())`, as `par_map` does), and
//! `scope-shared-mut` flags mutations of captured non-local state inside
//! `thread::scope` / `spawn` / `par_map` closures that bypass the
//! Mutex-or-channel discipline.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::CallGraph;
use crate::items::Item;
use crate::lexer::{Token, TokenKind};
use crate::rules::{Finding, Rule};

/// Zero-argument guard constructors (`m.lock()`, `rw.read()`,
/// `rw.write()`).
const GUARD_CALLS: [&str; 3] = ["lock", "read", "write"];
/// Condvar waits (re-acquire their guard argument).
const WAIT_CALLS: [&str; 3] = ["wait", "wait_while", "wait_timeout"];
/// Receivers that are IO handles, not locks.
const DENY_RECEIVERS: [&str; 3] = ["stdout", "stderr", "stdin"];
/// Functions whose closure arguments run on other threads.
const SPAWN_CALLS: [&str; 3] = ["spawn", "scope", "par_map"];
/// Methods that mutate their receiver in place.
const MUT_METHODS: [&str; 18] = [
    "push", "push_back", "push_front", "insert", "remove", "extend", "append", "clear",
    "truncate", "pop", "drain", "retain", "sort", "sort_by", "sort_unstable", "swap",
    "split_off", "resize",
];
/// A chain step that routes the mutation through a synchronized or
/// explicitly-exclusive handle, which is exactly the discipline the rule
/// enforces.
const CHAIN_SYNC: [&str; 6] = ["lock", "write", "borrow_mut", "get_mut", "entry", "send"];

/// How a guard-producing statement binds its guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Binding {
    /// `let g = m.lock()…;` — held to the end of the enclosing block.
    Let,
    /// Born in an `if`/`while`/`match` head — held through the construct.
    Cond,
    /// Plain temporary — held to the statement's `;`.
    Temp,
}

/// One lock acquisition inside a function body.
#[derive(Debug)]
struct Acq {
    /// Stable lock identity (`shortest_path.in_flight`).
    lock: String,
    /// 1-based line of the acquiring method token.
    line: u32,
    /// Absolute code-token index of the acquiring method token.
    pos: usize,
    /// Absolute code-token range the guard is held over.
    hold: (usize, usize),
}

/// A lock-poison escape (`.lock().unwrap()` and friends).
#[derive(Debug)]
struct PoisonSite {
    lock: String,
    /// Line of the `unwrap`/`expect` token (where the waiver goes).
    line: u32,
    col: u32,
    what: &'static str,
}

/// Brace depth per token of `code[lo..hi]`, relative to `lo`. A closing
/// brace carries the *outer* depth, so "first index with depth < d"
/// lands exactly on the brace that ends a block opened at depth `d`.
fn brace_depths(code: &[&Token], lo: usize, hi: usize) -> Vec<i32> {
    let mut out = Vec::with_capacity(hi.saturating_sub(lo));
    let mut cur = 0i32;
    for t in &code[lo..hi] {
        match t.text.as_str() {
            "{" => {
                out.push(cur);
                cur += 1;
            }
            "}" => {
                cur -= 1;
                out.push(cur);
            }
            _ => out.push(cur),
        }
    }
    out
}

/// Index just after the `)` matching the `(` at `open`.
fn match_paren(code: &[&Token], open: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    let mut k = open;
    while k < hi {
        match code[k].text.as_str() {
            "(" => depth += 1,
            ")" => {
                depth -= 1;
                if depth == 0 {
                    return k + 1;
                }
            }
            _ => {}
        }
        k += 1;
    }
    hi
}

/// Scans one function body for lock acquisitions and poison escapes.
fn scan_acquisitions(
    code: &[&Token],
    lo: usize,
    hi: usize,
    stem: &str,
) -> (Vec<Acq>, Vec<PoisonSite>) {
    let hi = hi.min(code.len());
    let lo = lo.min(hi);
    let depths = brace_depths(code, lo, hi);
    let depth = |idx: usize| depths[idx - lo];
    let mut acqs = Vec::new();
    let mut poisons = Vec::new();
    for i in lo..hi {
        let t = code[i];
        if t.kind != TokenKind::Ident || i < lo + 2 {
            continue;
        }
        let text = |k: usize| code.get(i + k).map(|t| t.text.as_str()).unwrap_or("");
        let name = t.text.as_str();
        let is_guard = GUARD_CALLS.contains(&name) && text(1) == "(" && text(2) == ")";
        let is_wait = WAIT_CALLS.contains(&name) && text(1) == "(" && text(2) != ")";
        if (!is_guard && !is_wait) || code[i - 1].text != "." {
            continue;
        }
        let recv = code[i - 2];
        if recv.kind != TokenKind::Ident || DENY_RECEIVERS.contains(&recv.text.as_str()) {
            continue;
        }
        let lock = format!("{stem}.{}", recv.text);

        // Poison escape: `…lock().unwrap(` / `…wait(g).expect(`.
        let after_args = match_paren(code, i + 1, hi);
        if code.get(after_args).is_some_and(|t| t.text == ".") {
            if let (Some(m), Some(p)) = (code.get(after_args + 1), code.get(after_args + 2)) {
                if (m.text == "unwrap" || m.text == "expect") && p.text == "(" {
                    poisons.push(PoisonSite {
                        lock: lock.clone(),
                        line: m.line,
                        col: m.col,
                        what: if m.text == "unwrap" { "`.unwrap()`" } else { "`.expect(…)`" },
                    });
                }
            }
        }

        // Statement classification: walk back to the previous statement
        // boundary and look at the first token after it.
        let mut b = i;
        while b > lo && !matches!(code[b - 1].text.as_str(), ";" | "{" | "}") {
            b -= 1;
        }
        let binding = match code.get(b).map(|t| t.text.as_str()) {
            Some("let") => Binding::Let,
            Some("if" | "while" | "match") => Binding::Cond,
            _ => Binding::Temp,
        };

        let d = depth(i);
        let hold_end = match binding {
            Binding::Let => (i + 1..hi).find(|&j| depth(j) < d).unwrap_or(hi),
            Binding::Cond => {
                // Held through the construct's block: brace-match the
                // first `{` at or below our depth.
                match (i + 1..hi).find(|&j| code[j].text == "{" && depth(j) <= d) {
                    Some(open) => (open + 1..hi)
                        .find(|&j| depth(j) < depth(open) + 1)
                        .map(|j| j + 1)
                        .unwrap_or(hi),
                    None => (i + 1..hi)
                        .find(|&j| code[j].text == ";" && depth(j) <= d)
                        .unwrap_or(hi),
                }
            }
            Binding::Temp => (i + 1..hi)
                .find(|&j| depth(j) < d || (code[j].text == ";" && depth(j) == d))
                .unwrap_or(hi),
        };
        acqs.push(Acq { lock, line: t.line, pos: i, hold: (i, hold_end) });
    }
    (acqs, poisons)
}

/// Relaxed whole-file scan for poison-escape site lines, used by the
/// stale-waiver sweep: a `lock-poison` pragma still guards a *potential*
/// site if its effective line holds one, test regions included.
pub fn poison_site_lines(code: &[&Token]) -> Vec<u32> {
    let mut out = Vec::new();
    for i in 0..code.len() {
        let t = code[i];
        if t.kind != TokenKind::Ident || i == 0 || code[i - 1].text != "." {
            continue;
        }
        let text = |k: usize| code.get(i + k).map(|t| t.text.as_str()).unwrap_or("");
        let name = t.text.as_str();
        let is_guard = GUARD_CALLS.contains(&name) && text(1) == "(" && text(2) == ")";
        let is_wait = WAIT_CALLS.contains(&name) && text(1) == "(" && text(2) != ")";
        if !is_guard && !is_wait {
            continue;
        }
        let after_args = match_paren(code, i + 1, code.len());
        if code.get(after_args).is_some_and(|t| t.text == ".") {
            if let (Some(m), Some(p)) = (code.get(after_args + 1), code.get(after_args + 2)) {
                if (m.text == "unwrap" || m.text == "expect") && p.text == "(" {
                    out.push(m.line);
                }
            }
        }
    }
    out
}

fn file_stem(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("?")
}

/// Runs the concurrency pass over the built call graph.
pub fn lock_findings(
    graph: &CallGraph,
    files: &[(String, String, Vec<&Token>, Vec<Item>)],
) -> Vec<Finding> {
    let n = graph.nodes.len();
    let mut out = Vec::new();

    // Per-node acquisitions and poison escapes.
    let mut acqs: Vec<Vec<Acq>> = Vec::with_capacity(n);
    for node in &graph.nodes {
        let code = &files[node.file].2;
        let stem = file_stem(&node.path);
        match node.body {
            Some((lo, hi)) => {
                let (a, poisons) = scan_acquisitions(code, lo, hi, stem);
                for p in &poisons {
                    out.push(Finding {
                        rule: Rule::LockPoison,
                        path: node.path.clone(),
                        line: p.line,
                        col: p.col,
                        key: format!("lock-poison:{}:{}:{}", node.path, node.qual, p.lock),
                        message: format!(
                            "{} on the `{}` guard escalates poisoning into a \
                             panic; recover with `unwrap_or_else(|p| \
                             p.into_inner())`, propagate the `PoisonError`, or \
                             add `// tao-lint: allow(lock-poison, reason = \
                             \"...\")`",
                            p.what, p.lock
                        ),
                    });
                }
                acqs.push(a);
            }
            None => acqs.push(Vec::new()),
        }
    }

    // Transitive lock sets: fixpoint over call edges.
    let mut lock_sets: Vec<BTreeSet<String>> = acqs
        .iter()
        .map(|a| a.iter().map(|x| x.lock.clone()).collect())
        .collect();
    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds < 64 {
        changed = false;
        rounds += 1;
        for i in 0..n {
            for &j in graph.callees(i) {
                if i == j {
                    continue;
                }
                let add: Vec<String> = lock_sets[j]
                    .iter()
                    .filter(|l| !lock_sets[i].contains(*l))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    lock_sets[i].extend(add);
                    changed = true;
                }
            }
        }
    }

    // Order edges + lock-across-call findings.
    struct Prov {
        path: String,
        qual: String,
        line: u32,
    }
    let mut edges: BTreeMap<(String, String), Prov> = BTreeMap::new();
    let mut add_edge = |from: &str, to: &str, path: &str, qual: &str, line: u32| {
        if from == to {
            return;
        }
        edges
            .entry((from.to_string(), to.to_string()))
            .or_insert_with(|| Prov { path: path.to_string(), qual: qual.to_string(), line });
    };
    for (i, node) in graph.nodes.iter().enumerate() {
        // Intra-procedural: B acquired inside A's hold range.
        for a in &acqs[i] {
            for b in &acqs[i] {
                if b.pos > a.hold.0 && b.pos < a.hold.1 && b.pos != a.pos {
                    add_edge(&a.lock, &b.lock, &node.path, &node.qual, b.line);
                }
            }
        }
        // Inter-procedural: a call inside A's hold range pulls in every
        // lock the callee transitively acquires.
        for (ci, &pos) in node.call_pos.iter().enumerate() {
            let code = &files[node.file].2;
            for a in &acqs[i] {
                if pos <= a.hold.0 || pos >= a.hold.1 {
                    continue;
                }
                for &t in &graph.call_targets(i)[ci] {
                    if t == i || lock_sets[t].is_empty() {
                        continue;
                    }
                    for l in &lock_sets[t] {
                        add_edge(&a.lock, l, &node.path, &node.qual, code[pos].line);
                    }
                    out.push(Finding {
                        rule: Rule::LockAcrossCall,
                        path: node.path.clone(),
                        line: code[pos].line,
                        col: code[pos].col,
                        key: format!(
                            "lock-across-call:{}:{}:{}->{}",
                            node.path, node.qual, a.lock, graph.nodes[t].qual
                        ),
                        message: format!(
                            "`{}` calls `{}` while holding `{}`, and the callee \
                             transitively acquires {{{}}} — a re-entrant path \
                             here deadlocks; drop the guard first or add \
                             `// tao-lint: allow(lock-across-call, reason = \
                             \"...\")`",
                            node.qual,
                            graph.nodes[t].qual,
                            a.lock,
                            lock_sets[t].iter().cloned().collect::<Vec<_>>().join(", ")
                        ),
                    });
                }
            }
        }
    }

    // Cycle detection over the lock-order graph (Kosaraju SCCs).
    let ids: Vec<&String> = {
        let mut s: BTreeSet<&String> = BTreeSet::new();
        for (from, to) in edges.keys() {
            s.insert(from);
            s.insert(to);
        }
        s.into_iter().collect()
    };
    let idx_of = |l: &String| ids.binary_search(&l).ok();
    let m = ids.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut radj: Vec<Vec<usize>> = vec![Vec::new(); m];
    for (from, to) in edges.keys() {
        if let (Some(f), Some(t)) = (idx_of(from), idx_of(to)) {
            adj[f].push(t);
            radj[t].push(f);
        }
    }
    // Iterative post-order.
    let mut order: Vec<usize> = Vec::with_capacity(m);
    let mut seen = vec![false; m];
    for s in 0..m {
        if seen[s] {
            continue;
        }
        let mut stack: Vec<(usize, usize)> = vec![(s, 0)];
        seen[s] = true;
        while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if !seen[w] {
                    seen[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    // Reverse pass assigns components.
    let mut comp = vec![usize::MAX; m];
    let mut ncomp = 0;
    for &s in order.iter().rev() {
        if comp[s] != usize::MAX {
            continue;
        }
        let mut stack = vec![s];
        comp[s] = ncomp;
        while let Some(v) = stack.pop() {
            for &w in &radj[v] {
                if comp[w] == usize::MAX {
                    comp[w] = ncomp;
                    stack.push(w);
                }
            }
        }
        ncomp += 1;
    }
    for c in 0..ncomp {
        let members: Vec<usize> = (0..m).filter(|&v| comp[v] == c).collect();
        if members.len() < 2 {
            continue;
        }
        let names: Vec<String> = members.iter().map(|&v| ids[v].clone()).collect();
        let cycle_edges: Vec<(&(String, String), &Prov)> = edges
            .iter()
            .filter(|((f, t), _)| names.contains(f) && names.contains(t))
            .collect();
        let anchor = cycle_edges
            .iter()
            .map(|(_, p)| p)
            .min_by_key(|p| (p.path.clone(), p.line))
            .map(|p| (p.path.clone(), p.line));
        let Some((path, line)) = anchor else { continue };
        let detail = cycle_edges
            .iter()
            .map(|((f, t), p)| format!("{} → {} ({}:{} in `{}`)", f, t, p.path, p.line, p.qual))
            .collect::<Vec<_>>()
            .join(", ");
        out.push(Finding {
            rule: Rule::LockOrderCycle,
            path: path.clone(),
            line,
            col: 1,
            key: format!("lock-order-cycle:{}", names.join("+")),
            message: format!(
                "lock-order cycle among {{{}}}: {}; two threads taking these \
                 in opposite orders deadlock — pick one global order or add \
                 `// tao-lint: allow(lock-order-cycle, reason = \"...\")` at \
                 this acquisition",
                names.join(", "),
                detail
            ),
        });
    }

    // Shared-mutable captures in thread closures.
    for (i, node) in graph.nodes.iter().enumerate() {
        let _ = i;
        let Some((lo, hi)) = node.body else { continue };
        let code = &files[node.file].2;
        scope_shared_mut(code, lo, hi.min(code.len()), node, &mut out);
    }

    out
}

/// Walks a mutation chain (`a.b[i].push`) backwards from `end` (the
/// token before the final `.` or `=`): returns the chain's root
/// identifier index and every identifier seen along the chain.
fn chain_root(code: &[&Token], lo: usize, end: usize) -> Option<(usize, Vec<String>)> {
    let mut names = Vec::new();
    let mut k = end;
    loop {
        let t = code.get(k)?;
        match t.text.as_str() {
            "]" => {
                // Match back to the opening `[`.
                let mut depth = 0i32;
                loop {
                    match code.get(k)?.text.as_str() {
                        "]" => depth += 1,
                        "[" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == lo {
                        return None;
                    }
                    k -= 1;
                }
                if k == lo {
                    return None;
                }
                k -= 1;
            }
            ")" => {
                // A call step (`.lock()`): match back to `(`, then the
                // method name is just before it.
                let mut depth = 0i32;
                loop {
                    match code.get(k)?.text.as_str() {
                        ")" => depth += 1,
                        "(" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == lo {
                        return None;
                    }
                    k -= 1;
                }
                if k == lo {
                    return None;
                }
                k -= 1;
            }
            _ if t.kind == TokenKind::Ident => {
                names.push(t.text.clone());
                if k > lo && code[k - 1].text == "." {
                    if k < lo + 2 {
                        return None;
                    }
                    k -= 2;
                } else {
                    return Some((k, names));
                }
            }
            _ => return None,
        }
    }
}

/// Scans one function body for `spawn`/`scope`/`par_map` closures and
/// flags mutations of captured non-local state inside them.
fn scope_shared_mut(
    code: &[&Token],
    lo: usize,
    hi: usize,
    node: &crate::graph::FnNode,
    out: &mut Vec<Finding>,
) {
    let mut flagged: BTreeSet<usize> = BTreeSet::new();
    for i in lo..hi {
        let t = code[i];
        if t.kind != TokenKind::Ident
            || !SPAWN_CALLS.contains(&t.text.as_str())
            || code.get(i + 1).map(|t| t.text.as_str()) != Some("(")
        {
            continue;
        }
        let args_end = match_paren(code, i + 1, hi).saturating_sub(1);
        // Find closure literals among the arguments.
        let mut j = i + 2;
        while j < args_end {
            let is_pipe = code[j].text == "|";
            let starts_closure = is_pipe
                && j > 0
                && matches!(code[j - 1].text.as_str(), "(" | "," | "move");
            if !starts_closure {
                j += 1;
                continue;
            }
            // Params up to the closing `|`.
            let mut locals: BTreeSet<String> = BTreeSet::new();
            let mut k = j + 1;
            while k < args_end && code[k].text != "|" {
                if code[k].kind == TokenKind::Ident && code[k].text != "mut" {
                    locals.insert(code[k].text.clone());
                }
                k += 1;
            }
            let body_start = k + 1;
            // Body: a braced block, or the expression up to the argument
            // separator at delimiter depth 0.
            let body_end = if code.get(body_start).is_some_and(|t| t.text == "{") {
                let mut depth = 0i32;
                let mut e = body_start;
                while e < args_end {
                    match code[e].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                e += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    e += 1;
                }
                e
            } else {
                let mut depth = 0i32;
                let mut e = body_start;
                while e < args_end {
                    match code[e].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    e += 1;
                }
                e
            };

            // Locals: `let` bindings, `for` patterns, nested closure
            // params — over-collecting only suppresses findings.
            let mut k = body_start;
            while k < body_end {
                match code[k].text.as_str() {
                    "let" | "for" => {
                        let stop = if code[k].text == "for" { "in" } else { "=" };
                        let mut p = k + 1;
                        while p < body_end
                            && code[p].text != stop
                            && code[p].text != ";"
                            && code[p].text != "{"
                        {
                            if code[p].kind == TokenKind::Ident
                                && !matches!(code[p].text.as_str(), "mut" | "ref")
                                && code.get(p.wrapping_sub(1)).map(|t| t.text.as_str())
                                    != Some(":")
                            {
                                locals.insert(code[p].text.clone());
                            }
                            p += 1;
                        }
                        k = p;
                    }
                    "|" if matches!(
                        code.get(k.wrapping_sub(1)).map(|t| t.text.as_str()),
                        Some("(" | "," | "move")
                    ) =>
                    {
                        let mut p = k + 1;
                        while p < body_end && code[p].text != "|" {
                            if code[p].kind == TokenKind::Ident && code[p].text != "mut" {
                                locals.insert(code[p].text.clone());
                            }
                            p += 1;
                        }
                        k = p + 1;
                    }
                    _ => k += 1,
                }
            }

            // Flag assignments and mutating method calls on non-locals.
            for k in body_start..body_end {
                let tk = code[k];
                if tk.text == "="
                    && code.get(k + 1).is_some_and(|t| t.text != "=" && t.text != ">")
                    && k > body_start
                {
                    let prev = code[k - 1].text.as_str();
                    if matches!(prev, "=" | "<" | ">" | "!") {
                        continue;
                    }
                    let lv_end = if matches!(prev, "+" | "-" | "*" | "/" | "%" | "^" | "&" | "|")
                    {
                        k - 2
                    } else {
                        k - 1
                    };
                    let Some((root, chain)) = chain_root(code, body_start, lv_end) else {
                        continue;
                    };
                    // `*guard.lock()… = v` routes through the lock: fine.
                    if chain.iter().any(|c| CHAIN_SYNC.contains(&c.as_str())) {
                        continue;
                    }
                    // A `let` binding is not an assignment.
                    if root > lo
                        && matches!(code[root - 1].text.as_str(), "let" | "mut" | "ref")
                    {
                        continue;
                    }
                    let name = &code[root].text;
                    if locals.contains(name) || name == "_" {
                        continue;
                    }
                    if flagged.insert(k) {
                        out.push(shared_mut_finding(node, code[root].line, code[root].col, name));
                    }
                }
                if tk.kind == TokenKind::Ident
                    && MUT_METHODS.contains(&tk.text.as_str())
                    && k > body_start + 1
                    && code[k - 1].text == "."
                    && code.get(k + 1).is_some_and(|t| t.text == "(")
                {
                    let Some((root, chain)) = chain_root(code, body_start, k - 2) else {
                        continue;
                    };
                    if chain.iter().any(|c| CHAIN_SYNC.contains(&c.as_str())) {
                        continue;
                    }
                    let name = &code[root].text;
                    if locals.contains(name) {
                        continue;
                    }
                    if flagged.insert(k) {
                        out.push(shared_mut_finding(node, tk.line, tk.col, name));
                    }
                }
            }
            j = body_end.max(j + 1);
        }
    }
}

fn shared_mut_finding(node: &crate::graph::FnNode, line: u32, col: u32, name: &str) -> Finding {
    Finding {
        rule: Rule::ScopeSharedMut,
        path: node.path.clone(),
        line,
        col,
        key: format!("scope-shared-mut:{}:{}:{}", node.path, node.qual, name),
        message: format!(
            "`{name}` is captured by a thread closure and mutated without a \
             `Mutex`/channel step; racing writes are nondeterministic — route \
             the mutation through a lock or per-task results, or add \
             `// tao-lint: allow(scope-shared-mut, reason = \"...\")`"
        ),
    }
}
