//! A minimal, line/column-tracked Rust lexer.
//!
//! Just enough tokenization for source-level lint rules: identifiers,
//! punctuation, numbers, string/char/byte literals, lifetimes, and
//! comments are all recognised and carried as distinct tokens, so a rule
//! that matches identifier sequences can never fire on text inside a
//! string literal or a doc comment. Raw strings (`r#"…"#`), nested block
//! comments, escapes, and the lifetime-versus-char-literal ambiguity
//! (`'a` vs `'a'`) are handled; everything else a full parser would do
//! (precedence, items, types) is deliberately out of scope.

/// What a token is, as far as lint rules care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `use`, `fn`, `r#type`).
    Ident,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// An integer or float literal, with any suffix.
    Number,
    /// A string or byte-string literal, raw or not. `text` is the raw
    /// source slice including quotes.
    Str,
    /// A char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A line or block comment, doc or not. `text` includes the
    /// delimiters.
    Comment,
    /// One punctuation token. Multi-character operators are not glued,
    /// with one exception: `::` is emitted as a single token because
    /// path-matching rules need it constantly.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's class.
    pub kind: TokenKind,
    /// The raw source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in chars) of the token's first character.
    pub col: u32,
    /// Byte offset of the token's first character in the source.
    pub lo: usize,
    /// Byte offset one past the token's last character.
    pub hi: usize,
}

/// Lexes `source` into a token stream, comments included.
///
/// The lexer never fails: malformed input (an unterminated string, a
/// stray byte) degrades into best-effort tokens rather than an error, so
/// the linter can still scan the rest of the file.
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    offset: usize,
    token_lo: usize,
    tokens: Vec<Token>,
    source: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            offset: 0,
            token_lo: 0,
            tokens: Vec::new(),
            source,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        self.offset += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Vec<Token> {
        let _ = self.source;
        // A shebang line (`#!/usr/bin/env …`, but not the inner attribute
        // `#![…]`) is swallowed as a comment token.
        if self.peek(0) == Some('#') && self.peek(1) == Some('!') && self.peek(2) != Some('[') {
            let (line, col) = (self.line, self.col);
            self.token_lo = self.offset;
            self.line_comment(line, col);
        }
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            self.token_lo = self.offset;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line, col),
                '/' if self.peek(1) == Some('*') => self.block_comment(line, col),
                '"' => self.string(line, col, String::new()),
                'r' | 'b' => self.ident_or_prefixed_literal(line, col),
                '\'' => self.lifetime_or_char(line, col),
                c if c.is_alphabetic() || c == '_' => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                ':' if self.peek(1) == Some(':') => {
                    self.bump();
                    self.bump();
                    self.push(TokenKind::Punct, "::".to_string(), line, col);
                }
                _ => {
                    let c = self.bump().expect("peeked char exists"); // tao-lint: allow(no-unwrap-in-lib, reason = "peeked char exists")
                    self.push(TokenKind::Punct, c.to_string(), line, col);
                }
            }
        }
        self.tokens
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
            lo: self.token_lo,
            hi: self.offset,
        });
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokenKind::Comment, text, line, col);
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        let mut depth = 0u32;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::Comment, text, line, col);
    }

    /// A plain `"…"` string with escapes. `prefix` carries any `b` that
    /// preceded the quote.
    fn string(&mut self, line: u32, col: u32, prefix: String) {
        let mut text = prefix;
        text.push('"');
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// A raw string `r"…"` / `r#"…"#` (with `prefix` = the consumed
    /// `r`/`br`). The closing quote must be followed by the same number
    /// of `#`s that opened it.
    fn raw_string(&mut self, line: u32, col: u32, prefix: String) {
        let mut text = prefix;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        text.push('"');
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            text.push(c);
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    text.push('#');
                    self.bump();
                }
                break;
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// Disambiguates identifiers starting with `r`/`b` from the literal
    /// prefixes `r"`, `r#"`, `b"`, `b'`, `br"`, `r#ident`.
    fn ident_or_prefixed_literal(&mut self, line: u32, col: u32) {
        let c0 = self.peek(0).expect("caller saw a char"); // tao-lint: allow(no-unwrap-in-lib, reason = "caller saw a char")
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        match (c0, c1) {
            ('r', Some('"')) => {
                self.bump();
                self.raw_string(line, col, "r".to_string());
            }
            ('r', Some('#')) if c2 == Some('"') || c2 == Some('#') => {
                self.bump();
                self.raw_string(line, col, "r".to_string());
            }
            ('r', Some('#')) => {
                // Raw identifier `r#type`.
                self.bump();
                self.bump();
                self.ident_with_prefix(line, col, "r#".to_string());
            }
            ('b', Some('"')) => {
                self.bump();
                self.string(line, col, "b".to_string());
            }
            ('b', Some('\'')) => {
                self.bump();
                self.bump();
                let mut text = String::from("b'");
                while let Some(c) = self.bump() {
                    text.push(c);
                    match c {
                        '\\' => {
                            if let Some(esc) = self.bump() {
                                text.push(esc);
                            }
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                self.push(TokenKind::Char, text, line, col);
            }
            ('b', Some('r')) if c2 == Some('"') || c2 == Some('#') => {
                self.bump();
                self.bump();
                self.raw_string(line, col, "br".to_string());
            }
            _ => self.ident(line, col),
        }
    }

    fn ident(&mut self, line: u32, col: u32) {
        self.ident_with_prefix(line, col, String::new());
    }

    fn ident_with_prefix(&mut self, line: u32, col: u32, prefix: String) {
        let mut text = prefix;
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line, col);
    }

    /// `'a` (lifetime) versus `'a'` (char literal): a quote followed by
    /// an identifier char is a lifetime unless the char after that is a
    /// closing quote; anything else (`'\n'`, `'('`) is a char literal.
    fn lifetime_or_char(&mut self, line: u32, col: u32) {
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        let is_lifetime = match c1 {
            Some(c) if c.is_alphabetic() || c == '_' => c2 != Some('\''),
            _ => false,
        };
        if is_lifetime {
            self.bump(); // the quote
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokenKind::Lifetime, text, line, col);
        } else {
            self.bump(); // the quote
            let mut text = String::from("'");
            while let Some(c) = self.bump() {
                text.push(c);
                match c {
                    '\\' => {
                        if let Some(esc) = self.bump() {
                            text.push(esc);
                        }
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokenKind::Char, text, line, col);
        }
    }

    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.'
                && self.peek(1).map_or(false, |d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // A float's fractional part — but not `0..n` (range) and
                // only one dot per literal (so `x.0.1` tuple indexing
                // yields two Number tokens).
                text.push('.');
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, text, line, col);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_paths() {
        let toks = kinds("use std::collections::HashMap;");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "use".into()),
                (TokenKind::Ident, "std".into()),
                (TokenKind::Punct, "::".into()),
                (TokenKind::Ident, "collections".into()),
                (TokenKind::Punct, "::".into()),
                (TokenKind::Ident, "HashMap".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn strings_swallow_identifier_lookalikes() {
        let toks = kinds(r#"let s = "HashMap::new() // not code";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "HashMap"));
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(),
            1
        );
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r##"let s = r#"a "quoted" HashMap"#;"##);
        let strs: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("quoted"));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
    }

    #[test]
    fn comments_are_tokens_not_code() {
        let toks = kinds("// HashMap here\nlet x = 1; /* Instant::now() */");
        let comments: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Comment)
            .collect();
        assert_eq!(comments.len(), 2);
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "Instant"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ fn x() {}");
        assert_eq!(toks[0].0, TokenKind::Comment);
        assert!(toks[0].1.contains("inner"));
        assert_eq!(toks[1], (TokenKind::Ident, "fn".into()));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn positions_track_lines_and_columns() {
        let toks = lex("ab cd\n  ef");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (1, 4));
        assert_eq!((toks[2].line, toks[2].col), (2, 3));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("for i in 0..10 { let f = 1.5e3; }");
        assert!(toks.contains(&(TokenKind::Number, "0".into())));
        assert!(toks.contains(&(TokenKind::Number, "10".into())));
        assert!(toks.contains(&(TokenKind::Number, "1.5e3".into())));
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r##"let a = b"bytes"; let c = b'x'; let r = br#"raw"#;"##);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            1
        );
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#type = 1;");
        assert!(toks.contains(&(TokenKind::Ident, "r#type".into())));
    }
}
