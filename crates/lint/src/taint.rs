//! The determinism-taint pass: interprocedural source→sink propagation
//! over the call graph.
//!
//! The replay-fingerprint proof strategy (DESIGN.md §7) only holds if
//! every *published* byte — serialized state, fingerprints, anything
//! written under `results/` — is a pure function of the run's inputs.
//! This pass marks functions that read nondeterministic *sources* (wall
//! clocks, the process environment, thread identity, pointer values,
//! NaN-sensitive float comparisons, std hash-collection iteration) and
//! propagates the mark along call-graph edges: a function is tainted if
//! it is a source or calls a tainted function. Any *sink* — a function
//! that serializes via `ByteWriter`, computes a fingerprint/digest, or
//! writes a `results/` path — that is tainted gets a finding with a
//! deterministic witness chain from the sink to the source, exactly like
//! panic-reachability.
//!
//! Findings anchor at the **sink** (line-free key
//! `determinism-taint:<crate>:<file-stem>::<qual>`), so fixing or waiving
//! a source never churns unrelated baseline keys, and the waiver pragma
//! sits where the published artifact is produced — the one place a
//! reviewer can judge whether the taint actually reaches the bytes.

use crate::graph::CallGraph;
use crate::items::Item;
use crate::lexer::{Token, TokenKind};
use crate::rules::{Finding, Rule};

/// Environment accessors whose results differ between runs or hosts.
const ENV_READS: [&str; 8] = [
    "var", "var_os", "vars", "vars_os", "args", "args_os", "current_dir", "temp_dir",
];

/// One detected taint source inside a function.
#[derive(Debug, Clone)]
struct Source {
    /// Human-readable description (`wall-clock read \`Instant::now\``).
    what: String,
    /// 1-based line of the source token.
    line: u32,
}

/// What makes a function a published sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SinkKind {
    /// Mentions `ByteWriter` in its signature or body: it serializes
    /// bytes that feed fingerprints.
    ByteWriter,
    /// Its name contains `fingerprint` or `digest`.
    FingerprintName,
    /// It holds a string literal addressing the published artifact
    /// directory (`results/…`, or a bare `results` path component).
    ResultsWrite,
}

impl SinkKind {
    fn describe(self) -> &'static str {
        match self {
            SinkKind::ByteWriter => "serializes via `ByteWriter`",
            SinkKind::FingerprintName => "computes a fingerprint/digest",
            SinkKind::ResultsWrite => "writes under `results/`",
        }
    }
}

/// Scans the node's token span (signature and body) for taint sources.
fn scan_sources(code: &[&Token], tok: (usize, usize)) -> Vec<Source> {
    let mut out = Vec::new();
    let (lo, hi) = (tok.0.min(code.len()), tok.1.min(code.len()));
    for i in lo..hi {
        let t = code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = |k: usize| code.get(i + k).map(|t| t.text.as_str()).unwrap_or("");
        let prev_dot = i > lo && code[i - 1].text == ".";
        let name = t.text.as_str();
        let what = if (name == "Instant" || name == "SystemTime")
            && text(1) == "::"
            && text(2) == "now"
        {
            Some(format!("wall-clock read `{name}::now`"))
        } else if name == "env" && text(1) == "::" && ENV_READS.contains(&text(2)) {
            Some(format!("environment read `env::{}`", text(2)))
        } else if name == "available_parallelism"
            || name == "ThreadId"
            || (name == "thread" && text(1) == "::" && text(2) == "current")
        {
            Some("thread-identity/parallelism probe".to_string())
        } else if prev_dot
            && (name == "as_ptr" || name == "as_mut_ptr")
            && text(1) == "("
            && text(2) == ")"
            && text(3) == "as"
        {
            Some(format!("pointer-as-integer cast `.{name}() as …`"))
        } else if prev_dot && name == "partial_cmp" && text(1) == "(" {
            Some("NaN-sensitive float comparison `.partial_cmp(…)`".to_string())
        } else if name == "HashMap" || name == "HashSet" {
            Some(format!("std `{name}` iteration order"))
        } else {
            None
        };
        if let Some(what) = what {
            out.push(Source { what, line: t.line });
        }
    }
    out
}

/// Scans the node's token span for published-sink markers. `fn_name` is
/// the node's simple name (fingerprint/digest functions sink by name).
fn scan_sinks(code: &[&Token], tok: (usize, usize), fn_name: &str) -> Option<SinkKind> {
    if fn_name.contains("fingerprint") || fn_name.contains("digest") {
        return Some(SinkKind::FingerprintName);
    }
    let (lo, hi) = (tok.0.min(code.len()), tok.1.min(code.len()));
    for t in &code[lo..hi] {
        match t.kind {
            TokenKind::Ident if t.text == "ByteWriter" => return Some(SinkKind::ByteWriter),
            TokenKind::Str if t.text.contains("results/") || t.text.trim_matches('"') == "results" => {
                return Some(SinkKind::ResultsWrite)
            }
            _ => {}
        }
    }
    None
}

/// Runs the determinism-taint pass over the built call graph. `files` is
/// the same slice [`CallGraph::build`] consumed; `FnNode::file` indexes
/// into it.
pub fn taint_findings(
    graph: &CallGraph,
    files: &[(String, String, Vec<&Token>, Vec<Item>)],
) -> Vec<Finding> {
    let n = graph.nodes.len();
    let mut sources: Vec<Vec<Source>> = Vec::with_capacity(n);
    let mut sinks: Vec<Option<SinkKind>> = Vec::with_capacity(n);
    for node in &graph.nodes {
        let code = &files[node.file].2;
        sources.push(scan_sources(code, node.tok));
        sinks.push(scan_sinks(code, node.tok, &node.name));
    }
    let seed: Vec<bool> = sources.iter().map(|s| !s.is_empty()).collect();
    let reach = graph.reach_from(&seed);

    let mut out = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        let Some(sink) = sinks[i] else { continue };
        if reach[i].is_none() {
            continue;
        }
        let (chain, end) = graph.witness_chain(i, &seed, &reach);
        let Some(src) = sources[end].first() else { continue };
        let stem = node
            .path
            .rsplit('/')
            .next()
            .and_then(|f| f.strip_suffix(".rs"))
            .unwrap_or("?");
        let via = if chain.len() > 1 {
            format!(" via {}", chain.join(" → "))
        } else {
            String::new()
        };
        out.push(Finding {
            rule: Rule::DeterminismTaint,
            path: node.path.clone(),
            line: node.line,
            col: 1,
            key: format!("determinism-taint:{}:{}::{}", node.krate, stem, node.qual),
            message: format!(
                "fn `{}` {} but can reach {} at {}:{}{}; published bytes must \
                 be a pure function of the inputs — break the path or \
                 acknowledge it with `// tao-lint: allow(determinism-taint, \
                 reason = \"...\")` at this sink",
                node.qual,
                sink.describe(),
                src.what,
                graph.nodes[end].path,
                src.line,
                via
            ),
        });
    }
    out
}
