//! `tao-lint`: the workspace's in-tree static-analysis pass.
//!
//! `scripts/ci.sh` can grep `Cargo.toml` manifests for banned registry
//! crates, but manifests cannot see *source-level* determinism hazards:
//! a `std::collections::HashMap` iterated in a broadcast loop, a stray
//! `Instant::now()` feeding simulated time, an `.unwrap()` that turns a
//! recoverable condition into a panic deep inside an overlay. This
//! crate lexes every Rust file in the workspace with a small hand-rolled
//! lexer ([`lexer`]) — so findings never fire inside string literals,
//! char literals, doc comments, or `#[cfg(test)]` regions — and enforces
//! the project invariants as named rules ([`rules`]).
//!
//! Since v2 the pass is *structural*, not just lexical: [`items`]
//! recovers the item/module tree of every file from the token stream,
//! [`graph`] links the items into an approximate cross-crate call graph,
//! and four graph-level rules ride on top — panic-reachability,
//! crate-layering, seed-discipline, and unused-waiver. v3 added the
//! dataflow passes ([`taint`], [`locks`]); v4 adds the hot-path passes
//! ([`alloc`], [`arith`]), which prove the zero-allocation and
//! overflow-safety disciplines of the routing/wheel kernels from
//! `// tao-lint: hot` entry markers. Findings serialize to a stable JSON
//! report ([`report`]) that CI diffs against the committed
//! `lint-baseline.json`; the baseline may only shrink.
//!
//! Run it over the whole workspace with:
//!
//! ```text
//! cargo run --release --offline -p tao-lint -- --workspace \
//!     --json results/lint.json --baseline lint-baseline.json
//! ```

pub mod alloc;
pub mod arith;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod locks;
pub mod report;
pub mod rules;
pub mod taint;
pub mod walk;
