//! `tao-lint`: the workspace's in-tree static-analysis pass.
//!
//! `scripts/ci.sh` can grep `Cargo.toml` manifests for banned registry
//! crates, but manifests cannot see *source-level* determinism hazards:
//! a `std::collections::HashMap` iterated in a broadcast loop, a stray
//! `Instant::now()` feeding simulated time, an `.unwrap()` that turns a
//! recoverable condition into a panic deep inside an overlay. This
//! crate lexes every Rust file in the workspace with a small hand-rolled
//! lexer ([`lexer`]) — so findings never fire inside string literals,
//! char literals, doc comments, or `#[cfg(test)]` regions — and enforces
//! the project invariants as named rules ([`rules`]).
//!
//! Run it over the whole workspace with:
//!
//! ```text
//! cargo run --release --offline -p tao-lint -- --workspace
//! ```

pub mod lexer;
pub mod rules;
pub mod walk;
