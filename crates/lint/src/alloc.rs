//! The alloc-reachability pass: a zero-allocation ratchet for the
//! `// tao-lint: hot` entry points.
//!
//! PR 9's scratch router and PR 6's timing wheel promise *steady-state*
//! allocation-free operation, but until now the promise was enforced only
//! by benchmarks. This pass proves it statically, the same way
//! panic-reachability is ratcheted: a function definition annotated with
//! a `// tao-lint: hot` marker (trailing, or stacked on the lines above
//! the item) seeds a forward BFS over the approximate call graph, and
//! every function in that *hot closure* is scanned for allocation sites —
//! collection growth (`.push(`, `.insert(`, `.resize(`, …), fresh
//! containers (`Vec::new`, `String::with_capacity`, `vec![…]`),
//! owning conversions (`.collect(`, `.to_vec(`, `.to_owned(`,
//! `.to_string(`, `.clone(`), `format!`, and boxing (`Box::new`,
//! `Rc::new`, `Arc::new`).
//!
//! Each finding anchors at the **allocation site** (line-free key
//! `alloc-reachability:<crate>:<file-stem>::<qual>:<kind>`), carries the
//! witness chain from the nearest hot entry to the allocating function,
//! and can be discharged three ways, strictest first: hoist the
//! allocation out of the hot closure (fix), waive it in place with
//! `// tao-lint: allow(alloc-reachability, reason = "…")` (intentional),
//! or leave it in the committed baseline (known-legal amortized growth —
//! scratch buffers on first use, the wheel's overflow spill — which only
//! ever shrinks).
//!
//! Like every `tao-lint` pass the scan is over-approximate: an unqualified
//! `.method(…)` call can pull same-name methods into the closure, and a
//! `.clone()` of a `Copy` value is flagged even though it never touches
//! the heap. False positives cost a waiver with a written reason; false
//! negatives would cost the paper's million-entry steady state.

use crate::graph::CallGraph;
use crate::items::Item;
use crate::lexer::{Token, TokenKind};
use crate::rules::{Finding, Rule};
use std::collections::BTreeMap;

/// How a node joined the hot closure.
#[derive(Debug, Clone, Copy)]
pub struct HotReach {
    /// Call-graph hops from the nearest hot entry (0 = is an entry).
    pub hops: u32,
    /// Node index of that entry.
    pub entry: usize,
    /// Predecessor on the BFS tree (`None` for entries).
    pub parent: Option<usize>,
}

/// Computes the hot closure: for every node, how it is reached from the
/// nearest `// tao-lint: hot` entry, or `None` when it is not reachable
/// from any. `hot_lines[f]` holds the hot-marked lines of graph-input
/// file `f` (a marker attaches to the item defined on its effective
/// line).
pub fn hot_closure(graph: &CallGraph, hot_lines: &[Vec<u32>]) -> Vec<Option<HotReach>> {
    let n = graph.nodes.len();
    let mut reach: Vec<Option<HotReach>> = vec![None; n];
    let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if hot_lines
            .get(node.file)
            .is_some_and(|lines| lines.contains(&node.line))
        {
            reach[i] = Some(HotReach { hops: 0, entry: i, parent: None });
            queue.push_back(i);
        }
    }
    while let Some(i) = queue.pop_front() {
        let here = reach[i].expect("queued nodes are marked"); // tao-lint: allow(no-unwrap-in-lib, reason = "queued nodes are marked before push")
        for &j in graph.callees(i) {
            if reach[j].is_none() {
                reach[j] = Some(HotReach {
                    hops: here.hops + 1,
                    entry: here.entry,
                    parent: Some(i),
                });
                queue.push_back(j);
            }
        }
    }
    reach
}

/// The witness chain from node `i`'s hot entry down to `i`, as `qual`
/// names (entry first). Empty when `i` is not in the closure.
pub fn hot_chain(graph: &CallGraph, hot: &[Option<HotReach>], i: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut cur = Some(i);
    let mut guard = 0;
    while let Some(c) = cur {
        chain.push(graph.nodes[c].qual.clone());
        cur = hot.get(c).and_then(|r| r.as_ref()).and_then(|r| r.parent);
        guard += 1;
        if guard > 64 {
            break;
        }
    }
    chain.reverse();
    chain
}

/// Methods that grow a collection in place (possibly reallocating).
const GROWTH_METHODS: [&str; 15] = [
    "push",
    "push_back",
    "push_front",
    "insert",
    "resize",
    "resize_with",
    "extend",
    "extend_from_slice",
    "reserve",
    "reserve_exact",
    "append",
    "or_insert",
    "or_insert_with",
    "or_default",
    "split_off",
];

/// Container types whose constructors mark a fresh heap-backed value.
const CONTAINER_TYPES: [&str; 9] = [
    "Vec", "VecDeque", "String", "BinaryHeap", "BTreeMap", "BTreeSet", "DetMap", "DetSet",
    "HashMap",
];

/// Container constructor names (`Vec::new`, `String::with_capacity`, …).
const CONTAINER_CTORS: [&str; 4] = ["new", "with_capacity", "from", "from_iter"];

/// One allocation site inside a function.
#[derive(Debug, Clone)]
struct AllocSite {
    /// Stable kind slug for the finding key.
    kind: &'static str,
    /// Human-readable site description (`` `.push(` `` etc.).
    what: String,
    line: u32,
    col: u32,
}

/// Scans a node's token span for allocation sites.
fn scan_alloc_sites(code: &[&Token], tok: (usize, usize)) -> Vec<AllocSite> {
    let mut out = Vec::new();
    let (lo, hi) = (tok.0.min(code.len()), tok.1.min(code.len()));
    for i in lo..hi {
        let t = code[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        let text = |k: usize| code.get(i + k).map(|t| t.text.as_str()).unwrap_or("");
        let prev_dot = i > lo && code[i - 1].text == ".";
        let site = if prev_dot && text(1) == "(" && GROWTH_METHODS.contains(&name) {
            Some(("growth", format!("grows a collection via `.{name}(`")))
        } else if prev_dot && text(1) == "(" && name == "collect" {
            Some(("collect", "materializes an iterator via `.collect()`".to_string()))
        } else if prev_dot && text(1) == "(" && name == "to_vec" {
            Some(("to-vec", "copies a slice via `.to_vec()`".to_string()))
        } else if prev_dot && text(1) == "(" && (name == "to_owned" || name == "to_string") {
            Some(("to-owned", format!("takes ownership via `.{name}()`")))
        } else if prev_dot && text(1) == "(" && name == "clone" {
            Some(("clone", "clones an owning value via `.clone()`".to_string()))
        } else if (name == "vec" || name == "format") && text(1) == "!" {
            Some((
                if name == "vec" { "vec-macro" } else { "format" },
                format!("builds a fresh container via `{name}![…]`"),
            ))
        } else if text(1) == "::"
            && CONTAINER_TYPES.contains(&name)
            && CONTAINER_CTORS.contains(&text(2))
        {
            Some(("container-new", format!("constructs `{}::{}`", name, text(2))))
        } else if text(1) == "::"
            && text(2) == "new"
            && (name == "Box" || name == "Rc" || name == "Arc")
        {
            Some(("box", format!("heap-allocates via `{name}::new`")))
        } else {
            None
        };
        if let Some((kind, what)) = site {
            out.push(AllocSite { kind, what, line: t.line, col: t.col });
        }
    }
    out
}

/// Runs the alloc-reachability pass: every node in the hot closure is
/// scanned for allocation sites, one finding per `(function, site kind)`
/// anchored at the first site of that kind.
pub fn alloc_findings(
    graph: &CallGraph,
    files: &[(String, String, Vec<&Token>, Vec<Item>)],
    hot: &[Option<HotReach>],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        let Some(reach) = hot.get(i).and_then(|r| r.as_ref()) else {
            continue;
        };
        let code = &files[node.file].2;
        let sites = scan_alloc_sites(code, node.tok);
        if sites.is_empty() {
            continue;
        }
        let mut per_kind: BTreeMap<&'static str, &AllocSite> = BTreeMap::new();
        for s in &sites {
            per_kind.entry(s.kind).or_insert(s);
        }
        let stem = node
            .path
            .rsplit('/')
            .next()
            .and_then(|f| f.strip_suffix(".rs"))
            .unwrap_or("?");
        let entry = &graph.nodes[reach.entry];
        let chain = hot_chain(graph, hot, i);
        let via = if chain.len() > 1 {
            format!(" via {}", chain.join(" → "))
        } else {
            String::new()
        };
        for site in per_kind.values() {
            out.push(Finding {
                rule: Rule::AllocReachability,
                path: node.path.clone(),
                line: site.line,
                col: site.col,
                key: format!(
                    "alloc-reachability:{}:{}::{}:{}",
                    node.krate, stem, node.qual, site.kind
                ),
                message: format!(
                    "fn `{}` {} inside the hot closure of `{}`{}; steady-state \
                     hot paths must not allocate — hoist the allocation into \
                     setup, reuse a scratch buffer, or acknowledge it with \
                     `// tao-lint: allow(alloc-reachability, reason = \"...\")` \
                     at the allocation site",
                    node.qual, site.what, entry.qual, via
                ),
            });
        }
    }
    out
}
