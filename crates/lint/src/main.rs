//! CLI driver: `tao-lint --workspace [--json <out>] [--baseline <file>]`
//! or `tao-lint <paths…>`.
//!
//! Workspace mode runs the full structural analysis ([`lint_workspace`])
//! over the manifest-derived file set, prints one
//! `path:line:col: rule: message` line per unwaived finding plus a
//! per-rule summary, optionally writes the stable JSON report, and —
//! when a baseline is given — exits nonzero only if the run *differs*
//! from the committed baseline (new findings or stale entries). Explicit
//! file arguments run the token rules only.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tao_lint::report::{diff_baseline, parse_baseline, render_baseline, render_json};
use tao_lint::rules::{lint_source, lint_workspace, Finding, Rule, SourceFile, ALL_RULES};
use tao_lint::walk::{classify, workspace_sources};
use tao_util::det::DetMap;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut workspace = false;
    let mut json_out: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--workspace" => workspace = true,
            "--json" | "--baseline" | "--write-baseline" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("tao-lint: {} needs a path argument", args[i]);
                    return ExitCode::FAILURE;
                };
                match args[i].as_str() {
                    "--json" => json_out = Some(PathBuf::from(value)),
                    "--baseline" => baseline = Some(PathBuf::from(value)),
                    _ => write_baseline = Some(PathBuf::from(value)),
                }
                i += 1;
            }
            "--help" | "-h" => {
                println!(
                    "usage: tao-lint --workspace [--json <out>] [--baseline <file>] \
                     [--write-baseline <out>] | tao-lint <file.rs>..."
                );
                return ExitCode::SUCCESS;
            }
            other => paths.push(PathBuf::from(other)),
        }
        i += 1;
    }

    let (findings, waived, files): (Vec<Finding>, Vec<(Rule, String, u32)>, usize) = if workspace {
        let sources = match workspace_sources(Path::new(".")) {
            Ok(walked) => walked,
            Err(e) => {
                eprintln!("tao-lint: cannot walk workspace: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut inputs: Vec<SourceFile> = Vec::new();
        for w in &sources {
            match std::fs::read_to_string(&w.path) {
                Ok(source) => inputs.push(SourceFile {
                    path: w.path.display().to_string(),
                    krate: w.krate.clone(),
                    kind: w.kind,
                    source,
                }),
                Err(e) => {
                    eprintln!("tao-lint: cannot read {}: {e}", w.path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
        let report = lint_workspace(&inputs);
        (report.findings, report.waived, report.files)
    } else {
        if paths.is_empty() {
            eprintln!("tao-lint: no input files (try --workspace)");
            return ExitCode::FAILURE;
        }
        let mut findings = Vec::new();
        let mut waived = Vec::new();
        let mut files = 0usize;
        for path in &paths {
            let source = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("tao-lint: cannot read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            files += 1;
            let display = path.strip_prefix("./").unwrap_or(path).display().to_string();
            let report = lint_source(&display, &source, classify(path));
            findings.extend(report.findings);
            waived.extend(
                report
                    .waived
                    .into_iter()
                    .map(|(rule, line)| (rule, display.clone(), line)),
            );
        }
        (findings, waived, files)
    };

    for f in &findings {
        println!("{}", f.render());
    }

    let mut per_rule_f: DetMap<&'static str, usize> = DetMap::new();
    let mut per_rule_w: DetMap<&'static str, usize> = DetMap::new();
    for f in &findings {
        *per_rule_f.entry(f.rule.name()).or_insert(0) += 1;
    }
    for (rule, _, _) in &waived {
        *per_rule_w.entry(rule.name()).or_insert(0) += 1;
    }
    println!("tao-lint: {files} files checked");
    for rule in ALL_RULES {
        let f = per_rule_f.get(&rule.name()).copied().unwrap_or(0);
        let w = per_rule_w.get(&rule.name()).copied().unwrap_or(0);
        println!("  {:<20} {:>3} finding(s) {:>3} waiver(s)", rule.name(), f, w);
    }

    if let Some(out) = &json_out {
        let json = render_json(&findings, files);
        if let Some(parent) = out.parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        if let Err(e) = std::fs::write(out, json) {
            eprintln!("tao-lint: cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        println!("tao-lint: wrote {}", out.display());
    }

    if let Some(out) = &write_baseline {
        if let Err(e) = std::fs::write(out, render_baseline(&findings)) {
            eprintln!("tao-lint: cannot write {}: {e}", out.display());
            return ExitCode::FAILURE;
        }
        println!("tao-lint: wrote baseline {}", out.display());
    }

    if let Some(baseline_path) = &baseline {
        let text = match std::fs::read_to_string(baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tao-lint: cannot read baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let entries = match parse_baseline(&text) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("tao-lint: bad baseline {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        };
        let diff = diff_baseline(&findings, &entries);
        if diff.is_clean() {
            println!(
                "tao-lint: matches baseline ({} acknowledged finding(s))",
                entries.values().sum::<u64>()
            );
            return ExitCode::SUCCESS;
        }
        print!("{}", diff.render());
        println!("tao-lint: baseline mismatch");
        return ExitCode::FAILURE;
    }

    if findings.is_empty() {
        println!("tao-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("tao-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
