//! CLI driver: `tao-lint --workspace` or `tao-lint <paths…>`.
//!
//! Prints one `path:line:col: rule: message` line per unwaived finding,
//! then a per-rule summary of findings and waivers, and exits nonzero
//! if any finding survived.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tao_lint::rules::{lint_source, Rule, ALL_RULES};
use tao_lint::walk::{classify, workspace_files};
use tao_util::det::DetMap;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut workspace = false;
    for a in &args {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--help" | "-h" => {
                println!("usage: tao-lint --workspace | tao-lint <file.rs>...");
                return ExitCode::SUCCESS;
            }
            other => paths.push(PathBuf::from(other)),
        }
    }
    if workspace {
        match workspace_files(Path::new(".")) {
            Ok(found) => paths.extend(found),
            Err(e) => {
                eprintln!("tao-lint: cannot walk workspace: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if paths.is_empty() {
        eprintln!("tao-lint: no input files (try --workspace)");
        return ExitCode::FAILURE;
    }

    let mut findings: DetMap<&'static str, usize> = DetMap::new();
    let mut waivers: DetMap<&'static str, usize> = DetMap::new();
    for rule in ALL_RULES {
        findings.insert(rule.name(), 0);
        waivers.insert(rule.name(), 0);
    }
    let mut total = 0usize;
    let mut files = 0usize;
    for path in &paths {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tao-lint: cannot read {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        };
        files += 1;
        let display = path
            .strip_prefix("./")
            .unwrap_or(path)
            .display()
            .to_string();
        let report = lint_source(&display, &source, classify(path));
        for f in &report.findings {
            println!("{}", f.render());
            *findings.entry(f.rule.name()).or_insert(0) += 1;
            total += 1;
        }
        for (rule, _line) in &report.waived {
            *waivers.entry(rule.name()).or_insert(0) += 1;
        }
    }

    println!("tao-lint: {files} files checked");
    for rule in ALL_RULES {
        let f = findings.get(&rule.name()).copied().unwrap_or(0);
        let w = if rule == Rule::BadPragma {
            0
        } else {
            waivers.get(&rule.name()).copied().unwrap_or(0)
        };
        println!("  {:<20} {:>3} finding(s) {:>3} waiver(s)", rule.name(), f, w);
    }
    if total == 0 {
        println!("tao-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("tao-lint: {total} finding(s)");
        ExitCode::FAILURE
    }
}
