//! The lint rules, pragma handling, and the per-file / per-workspace
//! drivers.
//!
//! The five *token* rules work on the token stream of [`crate::lexer`],
//! so string literals, char literals, and comments can never trigger a
//! finding. Code under `#[cfg(test)]` (and whole integration-test files)
//! is exempt from the determinism rules — tests may use whatever
//! collections they like — while the hermeticity rule
//! (`no-registry-import`) applies everywhere.
//!
//! The *structural* rules ([`Rule::PanicReachability`],
//! [`Rule::CrateLayering`], [`Rule::SeedDiscipline`],
//! [`Rule::UnusedWaiver`]) work on the item graph of [`crate::items`] and
//! the approximate call graph of [`crate::graph`], and the *dataflow*
//! rules ([`Rule::DeterminismTaint`] in [`crate::taint`];
//! [`Rule::LockOrderCycle`], [`Rule::LockPoison`],
//! [`Rule::LockAcrossCall`], [`Rule::ScopeSharedMut`] in
//! [`crate::locks`]) propagate facts along its edges; they need the whole
//! workspace as context and therefore only run through
//! [`lint_workspace`], not the single-file [`lint_source`].
//!
//! A finding can be waived in place with a pragma comment that names the
//! rule and *must* give a justification:
//!
//! ```text
//! some_option.expect("..."); // tao-lint: allow(no-unwrap-in-lib, reason = "checked above")
//! ```
//!
//! A pragma on its own line waives the line below it; a trailing pragma
//! waives its own line. A pragma without a non-empty `reason` string is
//! itself a finding (`bad-pragma`) and waives nothing. A valid pragma
//! whose rule has no potential site in its scope is *also* a finding
//! (`unused-waiver`): stale waivers are removed, not accumulated.

use crate::graph::CallGraph;
use crate::items::{code_tokens, parse_items, Item, ItemKind, Visibility};
use crate::lexer::{lex, Token, TokenKind};

/// The rules `tao-lint` enforces. See `DESIGN.md` §8 for the rationale
/// behind each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `std::collections` hash map/set in non-test code: their
    /// iteration order is seeded per process, which silently breaks
    /// cross-process replay determinism. Use `tao_util::det`.
    DetCollections,
    /// No `SystemTime::now`/`Instant::now` outside the bench harness:
    /// simulated time must come from `tao_sim`, never the wall clock.
    NoWallClock,
    /// No `.unwrap()`/`.expect(` in library code: return errors or
    /// carry a pragma with a justification.
    NoUnwrapInLib,
    /// No `use`/`extern crate` of the banned registry crates — the
    /// source-level complement of `scripts/ci.sh`'s manifest grep.
    NoRegistryImport,
    /// A malformed waiver pragma (unknown rule or missing reason).
    BadPragma,
    /// A panic site (`unwrap`/`expect`/panicking macro/indexing)
    /// transitively reachable from a `pub` non-test function in the
    /// simulation-facing crates must be acknowledged with a pragma at the
    /// public entry point, not just at the leaf.
    PanicReachability,
    /// A `use`/path edge between crates that violates the layering DAG
    /// (see [`LAYERS`]).
    CrateLayering,
    /// Every RNG construction must flow from a literal or derived seed:
    /// no wall-clock, entropy, pointer, or hasher sources.
    SeedDiscipline,
    /// A valid waiver pragma whose rule has no potential site in its
    /// scope: the code it excused no longer exists.
    UnusedWaiver,
    /// A published sink (`ByteWriter` serialization, fingerprint/digest,
    /// `results/` writer) transitively reachable from a nondeterminism
    /// source (wall clock, `std::env`, thread identity, pointer cast,
    /// `partial_cmp`, std hash iteration). See [`crate::taint`].
    DeterminismTaint,
    /// A cycle in the lock-acquisition order graph: two threads taking
    /// the locks in opposite orders deadlock. See [`crate::locks`].
    LockOrderCycle,
    /// `.lock().unwrap()` / `.expect(…)` on a guard: escalates poisoning
    /// into a panic instead of recovering or propagating.
    LockPoison,
    /// A call made while holding a lock whose callee transitively
    /// acquires locks: the classic re-entrancy deadlock shape.
    LockAcrossCall,
    /// A `thread::scope`/`spawn`/`par_map` closure mutates captured
    /// non-local state without a `Mutex`/channel step.
    ScopeSharedMut,
    /// An allocation site (collection growth, `collect`, `clone`,
    /// `String`/`format!`, `Box`) transitively reachable from a
    /// `// tao-lint: hot` entry point. Hot paths must be allocation-free
    /// in the steady state. See [`crate::alloc`].
    AllocReachability,
    /// Unguarded `+`/`-`/`*` on time-carrying values, a truncating
    /// `as`-cast, or indexing arithmetic, inside the hot closure. See
    /// [`crate::arith`].
    ArithSafety,
}

/// Every enforced rule, in reporting order.
pub const ALL_RULES: [Rule; 16] = [
    Rule::DetCollections,
    Rule::NoWallClock,
    Rule::NoUnwrapInLib,
    Rule::NoRegistryImport,
    Rule::BadPragma,
    Rule::PanicReachability,
    Rule::CrateLayering,
    Rule::SeedDiscipline,
    Rule::UnusedWaiver,
    Rule::DeterminismTaint,
    Rule::LockOrderCycle,
    Rule::LockPoison,
    Rule::LockAcrossCall,
    Rule::ScopeSharedMut,
    Rule::AllocReachability,
    Rule::ArithSafety,
];

/// The token-level rules enforced by the single-file [`lint_source`].
pub const TOKEN_RULES: [Rule; 5] = [
    Rule::DetCollections,
    Rule::NoWallClock,
    Rule::NoUnwrapInLib,
    Rule::NoRegistryImport,
    Rule::BadPragma,
];

/// Registry crates that must never be imported; keep in sync with the
/// `banned` list in `scripts/ci.sh`.
pub const BANNED_CRATES: [&str; 7] = [
    "rand",
    "proptest",
    "criterion",
    "crossbeam",
    "parking_lot",
    "bytes",
    "serde",
];

/// The crate-layering DAG: each crate with the set of workspace crates it
/// may depend on (directly or through re-exports). Self-references are
/// always allowed. The layer picture (DESIGN.md §8):
///
/// ```text
/// util → {topology, landmark} → {proximity, softstate, overlay} → {core, sim} → bench
/// ```
///
/// with the two intra-layer edges `landmark → topology` and
/// `{proximity, softstate} → overlay`. `tao-sim` sits beside `tao-core`:
/// nothing below the engine may depend on it — latencies and TTLs travel
/// as `tao_util::time` newtypes instead.
pub const LAYERS: &[(&str, &[&str])] = &[
    ("tao-util", &[]),
    ("tao-sim", &["tao-util"]),
    ("tao-topology", &["tao-util"]),
    ("tao-landmark", &["tao-util", "tao-topology"]),
    ("tao-overlay", &["tao-util", "tao-topology", "tao-landmark"]),
    ("tao-proximity", &["tao-util", "tao-topology", "tao-landmark", "tao-overlay"]),
    ("tao-softstate", &["tao-util", "tao-topology", "tao-landmark", "tao-overlay"]),
    (
        "tao-core",
        &["tao-util", "tao-sim", "tao-topology", "tao-landmark", "tao-overlay", "tao-proximity", "tao-softstate"],
    ),
    (
        "tao-bench",
        &["tao-util", "tao-sim", "tao-topology", "tao-landmark", "tao-overlay", "tao-proximity", "tao-softstate", "tao-core"],
    ),
    ("tao-lint", &["tao-util"]),
];

/// Crates whose `pub` functions are panic-reachability entry points.
pub const PANIC_ENTRY_CRATES: [&str; 4] = ["tao-overlay", "tao-softstate", "tao-sim", "tao-core"];

/// Method/function names a seed expression may call; anything else inside
/// a `seed_from_u64(…)` argument is a `seed-discipline` finding. Names
/// containing `seed` are always allowed (seed-derivation helpers).
const SEED_ALLOWED_CALLS: [&str; 18] = [
    "from",
    "into",
    "min",
    "max",
    "pow",
    "abs",
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "wrapping_pow",
    "saturating_add",
    "saturating_mul",
    "rotate_left",
    "rotate_right",
    "swap_bytes",
    "count_ones",
    "to_le",
    "to_be",
];

/// Identifiers that mark a seed expression as flowing from a
/// non-constant, non-parameter source.
const SEED_DENIED_IDENTS: [&str; 12] = [
    "now",
    "elapsed",
    "entropy",
    "thread_rng",
    "random",
    "as_ptr",
    "as_mut_ptr",
    "hash",
    "finish",
    "timestamp",
    "Instant",
    "SystemTime",
];

impl Rule {
    /// The rule's name as used in pragmas and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::DetCollections => "det-collections",
            Rule::NoWallClock => "no-wall-clock",
            Rule::NoUnwrapInLib => "no-unwrap-in-lib",
            Rule::NoRegistryImport => "no-registry-import",
            Rule::BadPragma => "bad-pragma",
            Rule::PanicReachability => "panic-reachability",
            Rule::CrateLayering => "crate-layering",
            Rule::SeedDiscipline => "seed-discipline",
            Rule::UnusedWaiver => "unused-waiver",
            Rule::DeterminismTaint => "determinism-taint",
            Rule::LockOrderCycle => "lock-order-cycle",
            Rule::LockPoison => "lock-poison",
            Rule::LockAcrossCall => "lock-across-call",
            Rule::ScopeSharedMut => "scope-shared-mut",
            Rule::AllocReachability => "alloc-reachability",
            Rule::ArithSafety => "arith-safety",
        }
    }

    /// Parses a rule name from a pragma.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.name() == name)
    }

    /// Whether a pragma can waive this rule. `bad-pragma` and
    /// `unused-waiver` are meta-rules about the pragmas themselves and
    /// cannot be waived away.
    pub fn waivable(self) -> bool {
        !matches!(self, Rule::BadPragma | Rule::UnusedWaiver)
    }
}

/// How a file participates in linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `crates/*/src` (not `bin/`, not `main.rs`):
    /// all rules apply.
    Lib,
    /// A binary (`src/bin/`, `src/main.rs`) or example: everything but
    /// `no-unwrap-in-lib` applies.
    Bin,
    /// An integration test or bench harness: only compiled into test
    /// runners, so the determinism rules are off; `no-registry-import`
    /// and `crate-layering` still apply.
    TestHarness,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Path of the file, as given to [`lint_source`].
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Stable baseline key: line-number-free for structural rules so the
    /// committed baseline does not churn when unrelated edits shift code.
    pub key: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// `path:line:col: rule: message`, the report and golden-file format.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.path,
            self.line,
            self.col,
            self.rule.name(),
            self.message
        )
    }
}

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations that were not waived.
    pub findings: Vec<Finding>,
    /// `(rule, line)` of findings waived by a valid pragma.
    pub waived: Vec<(Rule, u32)>,
}

/// One source file handed to [`lint_workspace`].
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (used in reports and keys).
    pub path: String,
    /// Package name of the owning crate (`tao-overlay`).
    pub krate: String,
    /// How the file participates in linting.
    pub kind: FileKind,
    /// The file's source text.
    pub source: String,
}

/// The outcome of linting the whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    /// Violations that were not waived, sorted by (path, line, col).
    pub findings: Vec<Finding>,
    /// `(rule, path, line)` of findings waived by a valid pragma.
    pub waived: Vec<(Rule, String, u32)>,
    /// Number of files analyzed.
    pub files: usize,
}

/// A parsed waiver pragma.
#[derive(Debug)]
struct Pragma {
    rule: Rule,
    /// The line whose findings this pragma waives.
    effective_line: u32,
    /// 1-based position of the pragma comment itself.
    line: u32,
    col: u32,
}

fn token_key(rule: Rule, path: &str, line: u32) -> String {
    format!("{}:{}:{}", rule.name(), path, line)
}

/// Lints one file's source text against the token rules. `path` is used
/// only for reporting. Structural rules need workspace context and run
/// through [`lint_workspace`].
pub fn lint_source(path: &str, source: &str, kind: FileKind) -> FileReport {
    let tokens = lex(source);
    let code = code_tokens(&tokens);
    let test_ranges = test_line_ranges(&code);
    let (pragmas, _hot, bad) = collect_pragmas(path, &tokens, &code);
    let raw = token_rule_findings(path, &code, kind, &test_ranges, false);

    let mut report = FileReport::default();
    for f in raw {
        let waiver = pragmas
            .iter()
            .find(|p| p.rule == f.rule && p.effective_line == f.line);
        match waiver {
            Some(p) => report.waived.push((p.rule, f.line)),
            None => report.findings.push(f),
        }
    }
    report.findings.extend(bad);
    report
        .findings
        .sort_by(|a, b| (a.line, a.col).cmp(&(b.line, b.col)));
    report
}

/// Lints a set of files as one workspace: token rules per file, then the
/// structural rules over the item graph, then waiver application and the
/// stale-pragma sweep.
pub fn lint_workspace(files: &[SourceFile]) -> WorkspaceReport {
    // Lex and parse every file once.
    struct Parsed<'a> {
        file: &'a SourceFile,
        tokens: Vec<Token>,
    }
    let parsed: Vec<Parsed> = files
        .iter()
        .map(|file| Parsed { file, tokens: lex(&file.source) })
        .collect();

    struct Analyzed<'a> {
        file: &'a SourceFile,
        code: Vec<&'a Token>,
        test_ranges: Vec<(u32, u32)>,
        items: Vec<Item>,
        pragmas: Vec<Pragma>,
        hot: Vec<u32>,
        bad: Vec<Finding>,
    }
    let analyzed: Vec<Analyzed> = parsed
        .iter()
        .map(|p| {
            let code = code_tokens(&p.tokens);
            let test_ranges = test_line_ranges(&code);
            let items = parse_items(&code);
            let (pragmas, hot, bad) = collect_pragmas(&p.file.path, &p.tokens, &code);
            Analyzed { file: p.file, code, test_ranges, items, pragmas, hot, bad }
        })
        .collect();

    // Raw (pre-waiver) findings: token rules + per-file structural rules.
    let mut raw: Vec<Finding> = Vec::new();
    for a in &analyzed {
        raw.extend(token_rule_findings(&a.file.path, &a.code, a.file.kind, &a.test_ranges, false));
        raw.extend(layering_findings(a.file, &a.code));
        raw.extend(seed_findings(a.file, &a.code, &a.test_ranges, &a.items));
    }

    // The call graph sees library code only: binaries and test harnesses
    // can neither be called from a `pub` item nor be one.
    let graph_input: Vec<(String, String, Vec<&Token>, Vec<Item>)> = analyzed
        .iter()
        .filter(|a| a.file.kind == FileKind::Lib)
        .map(|a| {
            (
                a.file.krate.clone(),
                a.file.path.clone(),
                a.code.clone(),
                a.items.clone(),
            )
        })
        .collect();
    // Hot-marked lines per graph-input file, aligned with `graph_input`
    // (the hot-path passes look nodes up by file index + line).
    let hot_lines: Vec<Vec<u32>> = analyzed
        .iter()
        .filter(|a| a.file.kind == FileKind::Lib)
        .map(|a| a.hot.clone())
        .collect();
    let graph = CallGraph::build(&graph_input);
    raw.extend(panic_reachability_findings(&graph));
    raw.extend(crate::taint::taint_findings(&graph, &graph_input));
    raw.extend(crate::locks::lock_findings(&graph, &graph_input));
    let hot_set = crate::alloc::hot_closure(&graph, &hot_lines);
    raw.extend(crate::alloc::alloc_findings(&graph, &graph_input, &hot_set));
    raw.extend(crate::arith::arith_findings(&graph, &graph_input, &hot_set));

    // Waiver application.
    let mut report = WorkspaceReport { files: files.len(), ..Default::default() };
    let mut used_pragmas: Vec<(usize, usize)> = Vec::new(); // (file idx, pragma idx)
    for f in raw {
        let file_idx = analyzed.iter().position(|a| a.file.path == f.path);
        let waiver = file_idx.and_then(|fi| {
            analyzed[fi]
                .pragmas
                .iter()
                .position(|p| p.rule == f.rule && f.rule.waivable() && p.effective_line == f.line)
                .map(|pi| (fi, pi))
        });
        match waiver {
            Some((fi, pi)) => {
                used_pragmas.push((fi, pi));
                report.waived.push((f.rule, f.path.clone(), f.line));
            }
            None => report.findings.push(f),
        }
    }

    // Stale-pragma sweep: a valid pragma counts as *used* if a potential
    // site for its rule exists on its effective line, even one exempted
    // by file kind or a test region (belt-and-suspenders pragmas are
    // fine); otherwise the code it excused is gone and it must go too.
    for (fi, a) in analyzed.iter().enumerate() {
        let relaxed = token_rule_findings(&a.file.path, &a.code, a.file.kind, &a.test_ranges, true);
        for (pi, p) in a.pragmas.iter().enumerate() {
            if used_pragmas.contains(&(fi, pi)) {
                continue;
            }
            let has_site = match p.rule {
                Rule::PanicReachability => {
                    // Sites for entry pragmas were consumed above when the
                    // entry fires; an unconsumed one guards nothing now,
                    // but keep it if the line still holds a pub fn that
                    // reaches a panic in a *non-entry* crate (never true:
                    // entries are the only sources), so: unused.
                    false
                }
                Rule::CrateLayering | Rule::SeedDiscipline => false,
                // The dataflow rules anchor findings at graph-derived
                // positions; an unconsumed pragma guards nothing.
                Rule::DeterminismTaint
                | Rule::LockOrderCycle
                | Rule::LockAcrossCall
                | Rule::ScopeSharedMut
                | Rule::AllocReachability
                | Rule::ArithSafety => false,
                // Poison escapes are re-scanned relaxed (tests included):
                // a belt-and-suspenders pragma on a real escape stays.
                Rule::LockPoison => {
                    crate::locks::poison_site_lines(&a.code).contains(&p.effective_line)
                }
                _ => relaxed
                    .iter()
                    .any(|f| f.rule == p.rule && f.line == p.effective_line),
            };
            if !has_site {
                report.findings.push(Finding {
                    rule: Rule::UnusedWaiver,
                    path: a.file.path.clone(),
                    line: p.line,
                    col: p.col,
                    key: format!("unused-waiver:{}:{}", a.file.path, p.rule.name()),
                    message: format!(
                        "`allow({})` pragma waives nothing here — the code it \
                         excused no longer exists; remove the pragma",
                        p.rule.name()
                    ),
                });
            }
        }
        report.findings.extend(a.bad.iter().cloned());
    }

    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule.name()).cmp(&(&b.path, b.line, b.col, b.rule.name())));
    report
}

/// The token-level rules (everything PR 3 enforced). With `relaxed` set,
/// file-kind and test-region exemptions are ignored — used to decide
/// whether a pragma still guards a *potential* site.
fn token_rule_findings(
    path: &str,
    code: &[&Token],
    kind: FileKind,
    test_ranges: &[(u32, u32)],
    relaxed: bool,
) -> Vec<Finding> {
    let in_test = |line: u32| -> bool {
        !relaxed
            && (kind == FileKind::TestHarness
                || test_ranges.iter().any(|&(lo, hi)| lo <= line && line <= hi))
    };
    let mut raw = Vec::new();
    for (i, t) in code.iter().enumerate() {
        // det-collections
        if t.kind == TokenKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !in_test(t.line)
        {
            raw.push(Finding {
                rule: Rule::DetCollections,
                path: path.to_string(),
                line: t.line,
                col: t.col,
                key: token_key(Rule::DetCollections, path, t.line),
                message: format!(
                    "std `{}` iterates in per-process random order; \
                     use `tao_util::det::{}` instead",
                    t.text,
                    if t.text == "HashMap" { "DetMap" } else { "DetSet" }
                ),
            });
        }

        // no-wall-clock: `SystemTime::now` / `Instant::now`
        if t.kind == TokenKind::Ident
            && (t.text == "SystemTime" || t.text == "Instant")
            && !in_test(t.line)
            && matches!(code.get(i + 1), Some(p) if p.text == "::")
            && matches!(code.get(i + 2), Some(n) if n.text == "now")
        {
            raw.push(Finding {
                rule: Rule::NoWallClock,
                path: path.to_string(),
                line: t.line,
                col: t.col,
                key: token_key(Rule::NoWallClock, path, t.line),
                message: format!(
                    "`{}::now` reads the wall clock; simulated code must \
                     take time from `tao_sim::SimTime`",
                    t.text
                ),
            });
        }

        // no-unwrap-in-lib: `.unwrap(` / `.expect(`
        if (kind == FileKind::Lib || relaxed)
            && t.kind == TokenKind::Punct
            && t.text == "."
            && !in_test(t.line)
        {
            if let (Some(name), Some(paren)) = (code.get(i + 1), code.get(i + 2)) {
                if name.kind == TokenKind::Ident
                    && (name.text == "unwrap" || name.text == "expect")
                    && paren.text == "("
                {
                    raw.push(Finding {
                        rule: Rule::NoUnwrapInLib,
                        path: path.to_string(),
                        line: name.line,
                        col: name.col,
                        key: token_key(Rule::NoUnwrapInLib, path, name.line),
                        message: format!(
                            "`.{}(` in library code can panic; return an error \
                             or add `// tao-lint: allow(no-unwrap-in-lib, \
                             reason = \"...\")`",
                            name.text
                        ),
                    });
                }
            }
        }

        // no-registry-import: `use <banned>…` / `extern crate <banned>`
        if t.kind == TokenKind::Ident && t.text == "use" {
            if let Some(first) = code.get(i + 1) {
                if first.kind == TokenKind::Ident
                    && BANNED_CRATES.contains(&first.text.as_str())
                {
                    raw.push(registry_finding(path, first));
                }
            }
        }
        if t.kind == TokenKind::Ident && t.text == "extern" {
            if let (Some(kw), Some(name)) = (code.get(i + 1), code.get(i + 2)) {
                if kw.text == "crate" && BANNED_CRATES.contains(&name.text.as_str()) {
                    raw.push(registry_finding(path, name));
                }
            }
        }
    }
    raw
}

fn registry_finding(path: &str, name: &Token) -> Finding {
    Finding {
        rule: Rule::NoRegistryImport,
        path: path.to_string(),
        line: name.line,
        col: name.col,
        key: token_key(Rule::NoRegistryImport, path, name.line),
        message: format!(
            "import of banned registry crate `{}`; the hermetic build \
             policy allows only in-tree tao-* crates (see DESIGN.md)",
            name.text
        ),
    }
}

/// `crate-layering`: every `tao_x::` path (in `use` declarations and
/// inline) must point at a crate the owning crate is allowed to see.
fn layering_findings(file: &SourceFile, code: &[&Token]) -> Vec<Finding> {
    let Some((_, allowed)) = LAYERS.iter().find(|(name, _)| *name == file.krate) else {
        return Vec::new(); // unknown crate: nothing to enforce
    };
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || !t.text.starts_with("tao_") {
            continue;
        }
        if !matches!(code.get(i + 1), Some(p) if p.text == "::") {
            continue;
        }
        let target = t.text.replace('_', "-");
        if target == file.krate || !LAYERS.iter().any(|(name, _)| *name == target) {
            continue;
        }
        if !allowed.contains(&target.as_str()) {
            out.push(Finding {
                rule: Rule::CrateLayering,
                path: file.path.clone(),
                line: t.line,
                col: t.col,
                key: format!("crate-layering:{}:{}->{}", file.path, file.krate, target),
                message: format!(
                    "`{}` must not depend on `{}`: the layering DAG allows \
                     {} → {{{}}} only (see DESIGN.md §8)",
                    file.krate,
                    target,
                    file.krate,
                    allowed.join(", ")
                ),
            });
        }
    }
    out
}

/// `seed-discipline`: every `seed_from_u64(…)` argument must be built
/// from literals, parameters, and seed-derivation arithmetic only.
///
/// An argument expression *anchored on a seed* — any identifier containing
/// `seed`, such as `op_seed(master, index)` or `self.master_seed` — may
/// additionally mix in benign helper calls (`domain.len()`, casts, …): the
/// per-op seeds the parallel churn executor derives from
/// `(master seed, op index)` are exactly this shape, and they replay
/// bit-identically by construction. Denied identifiers (wall clocks,
/// entropy, pointers) are flagged even when a seed anchor is present.
fn seed_findings(
    file: &SourceFile,
    code: &[&Token],
    test_ranges: &[(u32, u32)],
    items: &[Item],
) -> Vec<Finding> {
    if file.kind == FileKind::TestHarness {
        return Vec::new();
    }
    let in_test =
        |line: u32| test_ranges.iter().any(|&(lo, hi)| lo <= line && line <= hi);
    let mut out = Vec::new();
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "seed_from_u64" {
            continue;
        }
        if !matches!(code.get(i + 1), Some(p) if p.text == "(") {
            continue;
        }
        if in_test(t.line) {
            continue;
        }
        // First pass over the balanced parens: is the argument anchored
        // on a seed-named identifier anywhere?
        let mut depth = 0i32;
        let mut k = i + 1;
        let mut seed_anchored = false;
        while k < code.len() {
            match code[k].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if k > i + 1
                && code[k].kind == TokenKind::Ident
                && code[k].text.contains("seed")
            {
                seed_anchored = true;
            }
            k += 1;
        }
        // Walk the argument tokens inside the balanced parens.
        let mut depth = 0i32;
        let mut k = i + 1;
        let mut culprit: Option<String> = None;
        while k < code.len() {
            let text = code[k].text.as_str();
            match text {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if k > i + 1 && code[k].kind == TokenKind::Ident {
                let is_call = matches!(code.get(k + 1), Some(p) if p.text == "(");
                if SEED_DENIED_IDENTS.contains(&text) {
                    culprit = Some(format!("`{text}`"));
                    break;
                }
                if is_call
                    && !seed_anchored
                    && !text.contains("seed")
                    && !SEED_ALLOWED_CALLS.contains(&text)
                    && !text.chars().next().is_some_and(|c| c.is_ascii_digit())
                    && !matches!(text, "u8" | "u16" | "u32" | "u64" | "u128" | "usize")
                {
                    culprit = Some(format!("call to `{text}(…)`"));
                    break;
                }
            }
            k += 1;
        }
        if let Some(culprit) = culprit {
            let qual = enclosing_fn(items, code[i].lo).unwrap_or_else(|| format!("L{}", t.line));
            out.push(Finding {
                rule: Rule::SeedDiscipline,
                path: file.path.clone(),
                line: t.line,
                col: t.col,
                key: format!("seed-discipline:{}:{}", file.path, qual),
                message: format!(
                    "RNG seed flows from {culprit}, not a literal or derived \
                     seed; derive seeds from a master seed so runs replay \
                     bit-identically"
                ),
            });
        }
    }
    out
}

/// The qualified name of the innermost `fn` item containing byte `lo`.
fn enclosing_fn(items: &[Item], lo: usize) -> Option<String> {
    let mut best: Option<&Item> = None;
    for item in items {
        item.visit(&mut |i| {
            if i.kind == ItemKind::Fn && i.lo <= lo && lo < i.hi {
                let better = match best {
                    Some(b) => i.hi - i.lo <= b.hi - b.lo,
                    None => true,
                };
                if better {
                    best = Some(i);
                }
            }
        });
    }
    best.map(|i| i.qual.clone())
}

/// `panic-reachability`: a `pub` non-test function in the simulation
/// crates that can transitively reach a panic site must carry a pragma at
/// its own definition line.
fn panic_reachability_findings(graph: &CallGraph) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        if node.vis != Visibility::Pub || !PANIC_ENTRY_CRATES.contains(&node.krate.as_str()) {
            continue;
        }
        let Some((chain, owner, site)) = graph.reachable_panic(i) else {
            continue;
        };
        let stem = node
            .path
            .rsplit('/')
            .next()
            .and_then(|f| f.strip_suffix(".rs"))
            .unwrap_or("?");
        let via = if chain.len() > 1 {
            format!(" via {}", chain.join(" → "))
        } else {
            String::new()
        };
        out.push(Finding {
            rule: Rule::PanicReachability,
            path: node.path.clone(),
            line: node.line,
            col: 1,
            key: format!("panic-reachability:{}:{}::{}", node.krate, stem, node.qual),
            message: format!(
                "pub fn `{}` can reach {} at {}:{}{}; acknowledge the panic \
                 path with `// tao-lint: allow(panic-reachability, reason = \
                 \"...\")` at this entry point",
                node.qual,
                site.kind.describe(),
                owner.path,
                site.line,
                via
            ),
        });
    }
    out
}

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items.
///
/// An attribute whose tokens are `cfg ( … test … )` (with no `not`) or
/// exactly `test` marks the item that follows. The item's extent runs to
/// the `;` of a braceless item or through the brace-matched `{ … }` body.
fn test_line_ranges(code: &[&Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].text == "#" && code.get(i + 1).map_or(false, |t| t.text == "[") {
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1;
            let mut idents: Vec<&str> = Vec::new();
            while j < code.len() && depth > 0 {
                match code[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {
                        if code[j].kind == TokenKind::Ident {
                            idents.push(&code[j].text);
                        }
                    }
                }
                j += 1;
            }
            let is_cfg_test = idents.contains(&"cfg")
                && idents.contains(&"test")
                && !idents.contains(&"not");
            let is_test_attr = idents == ["test"];
            if is_cfg_test || is_test_attr {
                let start_line = code[i].line;
                // Find the guarded item's extent: the first `;` before
                // any brace ends it, otherwise brace-match its body.
                let mut k = j;
                let mut end_line = start_line;
                while k < code.len() {
                    let text = code[k].text.as_str();
                    if text == ";" {
                        end_line = code[k].line;
                        break;
                    }
                    if text == "{" {
                        let mut braces = 1;
                        k += 1;
                        while k < code.len() && braces > 0 {
                            match code[k].text.as_str() {
                                "{" => braces += 1,
                                "}" => braces -= 1,
                                _ => {}
                            }
                            k += 1;
                        }
                        end_line = code.get(k.saturating_sub(1)).map_or(end_line, |t| t.line);
                        break;
                    }
                    k += 1;
                }
                ranges.push((start_line, end_line));
                i = j;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Extracts waiver pragmas and `hot` entry markers from comment tokens.
/// Returns the valid pragmas, the lines marked hot, plus `bad-pragma`
/// findings for malformed pragmas.
fn collect_pragmas(
    path: &str,
    tokens: &[Token],
    code: &[&Token],
) -> (Vec<Pragma>, Vec<u32>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut hot = Vec::new();
    let mut bad = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::Comment {
            continue;
        }
        // Doc comments are documentation, not directives: a pragma shown
        // as an *example* in rustdoc must not register as a waiver.
        if t.text.starts_with("///")
            || t.text.starts_with("//!")
            || t.text.starts_with("/**")
            || t.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = t.text.find("tao-lint:") else {
            continue;
        };
        let rest = t.text[at + "tao-lint:".len()..].trim_start();
        // A trailing directive covers its own line; a directive alone on
        // a line covers the next *code* line — so a hot marker and a
        // waiver pragma can stack above one item and both attach to it.
        let has_code_on_line = code.iter().any(|c| c.line == t.line);
        let effective_line = if has_code_on_line {
            t.line
        } else {
            code.iter()
                .find(|c| c.line > t.line)
                .map(|c| c.line)
                .unwrap_or(t.line + 1)
        };
        // A bare `hot` directive marks the entry point defined on the
        // effective line for the hot-path passes; it is a marker, not a
        // waiver, so it bypasses `parse_pragma`.
        if rest.trim_end_matches(['.', ' ']).trim() == "hot" {
            hot.push(effective_line);
            continue;
        }
        match parse_pragma(rest) {
            Ok((rules, _reason)) => {
                // A multi-rule pragma (`allow(r1, r2, reason = "…")`)
                // registers one waiver per rule on the same line.
                for rule in rules {
                    pragmas.push(Pragma {
                        rule,
                        effective_line,
                        line: t.line,
                        col: t.col,
                    });
                }
            }
            Err(why) => bad.push(Finding {
                rule: Rule::BadPragma,
                path: path.to_string(),
                line: t.line,
                col: t.col,
                key: token_key(Rule::BadPragma, path, t.line),
                message: why,
            }),
        }
    }
    (pragmas, hot, bad)
}

/// Parses `allow(<rule>[, <rule>…], reason = "<non-empty>")`. One pragma
/// comment may waive several rules on the same line (a `lock().expect(…)`
/// site needs both `no-unwrap-in-lib` and `lock-poison`); the single
/// `reason` justifies them all.
fn parse_pragma(text: &str) -> Result<(Vec<Rule>, String), String> {
    let body = text
        .strip_prefix("allow(")
        .ok_or_else(|| "pragma must be `allow(<rule>, reason = \"...\")`".to_string())?;
    let Some(close) = body.rfind(')') else {
        return Err("pragma is missing its closing `)`".to_string());
    };
    let mut rest = &body[..close];
    let mut rules = Vec::new();
    let rest = loop {
        let Some((rule_name, tail)) = rest.split_once(',') else {
            return Err(format!(
                "pragma for `{}` needs a `, reason = \"...\"` justification",
                rest.trim()
            ));
        };
        let rule_name = rule_name.trim();
        let rule = Rule::from_name(rule_name)
            .ok_or_else(|| format!("pragma names unknown rule `{rule_name}`"))?;
        rules.push(rule);
        rest = tail;
        if rest.trim_start().starts_with("reason") {
            break rest.trim();
        }
    };
    let names = || {
        rules
            .iter()
            .map(|r| r.name())
            .collect::<Vec<_>>()
            .join(", ")
    };
    let reason = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .ok_or_else(|| {
            format!("pragma for `{}` needs `reason = \"...\"` after the rule", names())
        })?;
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("pragma reason for `{}` must be a quoted string", names()))?;
    if reason.trim().is_empty() {
        return Err(format!(
            "pragma for `{}` has an empty reason; justify the waiver",
            names()
        ));
    }
    Ok((rules, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str, kind: FileKind) -> Vec<String> {
        lint_source("f.rs", src, kind)
            .findings
            .into_iter()
            .map(|f| format!("{}:{}", f.rule.name(), f.line))
            .collect()
    }

    fn ws(files: Vec<(&str, &str, FileKind, &str)>) -> WorkspaceReport {
        let sources: Vec<SourceFile> = files
            .into_iter()
            .map(|(path, krate, kind, source)| SourceFile {
                path: path.to_string(),
                krate: krate.to_string(),
                kind,
                source: source.to_string(),
            })
            .collect();
        lint_workspace(&sources)
    }

    fn ws_rules(report: &WorkspaceReport) -> Vec<String> {
        report
            .findings
            .iter()
            .map(|f| format!("{}:{}", f.rule.name(), f.line))
            .collect()
    }

    #[test]
    fn hash_collections_flagged_outside_tests_only() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        assert_eq!(findings(src, FileKind::Lib), vec!["det-collections:1"]);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "// HashMap in a comment\nlet s = \"HashMap\"; /* Instant::now() */\n";
        assert!(findings(src, FileKind::Lib).is_empty());
    }

    #[test]
    fn wall_clock_detected_through_paths() {
        let src = "let t = std::time::Instant::now();\nlet s = SystemTime::now();\n";
        assert_eq!(
            findings(src, FileKind::Lib),
            vec!["no-wall-clock:1", "no-wall-clock:2"]
        );
    }

    #[test]
    fn unwrap_rule_is_lib_only_and_waivable() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(findings(src, FileKind::Lib), vec!["no-unwrap-in-lib:1"]);
        assert!(findings(src, FileKind::Bin).is_empty());
        let waived = "fn f() { x.unwrap(); } // tao-lint: allow(no-unwrap-in-lib, reason = \"ok\")\n";
        assert!(findings(waived, FileKind::Lib).is_empty());
        let report = lint_source("f.rs", waived, FileKind::Lib);
        assert_eq!(report.waived, vec![(Rule::NoUnwrapInLib, 1)]);
    }

    #[test]
    fn pragma_alone_on_a_line_covers_the_next() {
        let src = "// tao-lint: allow(no-unwrap-in-lib, reason = \"init\")\nlet x = y.expect(\"set\");\n";
        assert!(findings(src, FileKind::Lib).is_empty());
    }

    #[test]
    fn pragma_without_reason_is_a_finding_and_waives_nothing() {
        let src = "x.unwrap(); // tao-lint: allow(no-unwrap-in-lib)\n";
        let got = findings(src, FileKind::Lib);
        assert!(got.contains(&"no-unwrap-in-lib:1".to_string()));
        assert!(got.contains(&"bad-pragma:1".to_string()));
    }

    #[test]
    fn registry_imports_flagged_even_in_test_harnesses() {
        let src = "use serde::Serialize;\nextern crate rand;\nuse tao_util::rand::Rng;\n";
        assert_eq!(
            findings(src, FileKind::TestHarness),
            vec!["no-registry-import:1", "no-registry-import:2"]
        );
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod real {\n    use std::collections::HashMap;\n}\n";
        assert_eq!(findings(src, FileKind::Lib), vec!["det-collections:3"]);
    }

    #[test]
    fn test_attr_covers_a_single_fn() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn lib() { y.unwrap(); }\n";
        assert_eq!(findings(src, FileKind::Lib), vec!["no-unwrap-in-lib:3"]);
    }

    // ---- structural rules (workspace driver) ----

    #[test]
    fn layering_violation_flags_use_and_inline_paths() {
        let report = ws(vec![(
            "crates/overlay/src/bad.rs",
            "tao-overlay",
            FileKind::Lib,
            "use tao_sim::SimTime;\npub fn f() { let _ = tao_core::params(); }\n",
        )]);
        let rules = ws_rules(&report);
        assert!(rules.contains(&"crate-layering:1".to_string()), "{rules:?}");
        assert!(rules.contains(&"crate-layering:2".to_string()), "{rules:?}");
    }

    #[test]
    fn layering_allows_the_dag() {
        let report = ws(vec![(
            "crates/overlay/src/ok.rs",
            "tao-overlay",
            FileKind::Lib,
            "use tao_util::time::SimDuration;\nuse tao_topology::Graph;\n",
        )]);
        assert!(
            !ws_rules(&report).iter().any(|r| r.starts_with("crate-layering")),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn seed_discipline_flags_wall_clock_and_unknown_calls() {
        let report = ws(vec![(
            "crates/core/src/s.rs",
            "tao-core",
            FileKind::Lib,
            "fn a(seed: u64) { let _ = StdRng::seed_from_u64(seed.wrapping_add(1)); }\n\
             fn b(&self) { let _ = StdRng::seed_from_u64(self.now.as_micros()); }\n\
             fn c() { let _ = StdRng::seed_from_u64(compute_stuff()); }\n\
             fn d(master: u64, i: u64) { let _ = StdRng::seed_from_u64(task_seed(master, i)); }\n",
        )]);
        let rules: Vec<String> = ws_rules(&report)
            .into_iter()
            .filter(|r| r.starts_with("seed-discipline"))
            .collect();
        assert_eq!(rules, vec!["seed-discipline:2", "seed-discipline:3"]);
    }

    #[test]
    fn seed_discipline_accepts_seed_anchored_derivations() {
        // Per-op seeds mix a master seed with batch geometry: helper calls
        // like `len()` are fine once the expression is anchored on a
        // seed-named identifier — but wall clocks stay flagged.
        let report = ws(vec![(
            "crates/sim/src/s.rs",
            "tao-sim",
            FileKind::Lib,
            "fn a(&self, domain: &[u8], i: usize) {\n\
                 let _ = StdRng::seed_from_u64(op_seed(self.seed, (domain.len() + i) as u64));\n\
             }\n\
             fn b(&self, domain: &[u8]) {\n\
                 let _ = StdRng::seed_from_u64(self.master_seed ^ domain.len() as u64);\n\
             }\n\
             fn c(&self, domain: &[u8]) {\n\
                 let _ = StdRng::seed_from_u64(self.master_seed ^ now());\n\
             }\n\
             fn d(&self, domain: &[u8]) {\n\
                 let _ = StdRng::seed_from_u64(domain.len() as u64);\n\
             }\n",
        )]);
        let rules: Vec<String> = ws_rules(&report)
            .into_iter()
            .filter(|r| r.starts_with("seed-discipline"))
            .collect();
        assert_eq!(rules, vec!["seed-discipline:8", "seed-discipline:11"]);
    }

    #[test]
    fn panic_reachability_fires_at_entry_and_respects_pragmas() {
        let src = "\
pub fn entry() { helper() }\n\
fn helper(x: Option<u32>) { x.unwrap(); } // tao-lint: allow(no-unwrap-in-lib, reason = \"leaf ok\")\n\
// tao-lint: allow(panic-reachability, reason = \"bounded by construction\")\n\
pub fn waived_entry() { helper() }\n\
fn private_reaches() { helper() }\n";
        let report = ws(vec![(
            "crates/overlay/src/p.rs",
            "tao-overlay",
            FileKind::Lib,
            src,
        )]);
        let pr: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::PanicReachability)
            .collect();
        // Only the unwaived pub entry fires; leaf pragmas do not discharge
        // the entry, private fns are not entries.
        assert_eq!(pr.len(), 1, "{:?}", report.findings);
        assert_eq!(pr[0].line, 1);
        assert!(pr[0].message.contains("entry → helper"), "{}", pr[0].message);
        assert!(report
            .waived
            .iter()
            .any(|(r, _, line)| *r == Rule::PanicReachability && *line == 4));
    }

    #[test]
    fn non_entry_crates_do_not_fire_panic_reachability() {
        let report = ws(vec![(
            "crates/topology/src/t.rs",
            "tao-topology",
            FileKind::Lib,
            "pub fn gen(x: Option<u32>) -> u32 { x.unwrap() } // tao-lint: allow(no-unwrap-in-lib, reason = \"ok\")\n",
        )]);
        assert!(
            !ws_rules(&report).iter().any(|r| r.starts_with("panic-reachability")),
            "{:?}",
            report.findings
        );
    }

    #[test]
    fn unused_waiver_flags_stale_pragmas_only() {
        let src = "\
fn live(x: Option<u32>) { x.unwrap(); } // tao-lint: allow(no-unwrap-in-lib, reason = \"used\")\n\
fn stale() { let y = 1 + 1; } // tao-lint: allow(no-unwrap-in-lib, reason = \"code moved away\")\n";
        let report = ws(vec![(
            "crates/overlay/src/w.rs",
            "tao-overlay",
            FileKind::Lib,
            src,
        )]);
        let uw: Vec<&Finding> = report
            .findings
            .iter()
            .filter(|f| f.rule == Rule::UnusedWaiver)
            .collect();
        assert_eq!(uw.len(), 1, "{:?}", report.findings);
        assert_eq!(uw[0].line, 2);
    }

    #[test]
    fn belt_and_suspenders_pragmas_in_tests_are_not_stale() {
        // A pragma guarding an unwrap inside #[cfg(test)] waives nothing
        // (the rule is off there) but still guards a potential site, so it
        // is not reported as unused.
        let src = "#[cfg(test)]\nmod tests {\n    fn t(x: Option<u32>) { x.unwrap(); } // tao-lint: allow(no-unwrap-in-lib, reason = \"defensive\")\n}\n";
        let report = ws(vec![(
            "crates/overlay/src/bt.rs",
            "tao-overlay",
            FileKind::Lib,
            src,
        )]);
        assert!(
            !ws_rules(&report).iter().any(|r| r.starts_with("unused-waiver")),
            "{:?}",
            report.findings
        );
    }
}
