//! The lint rules, pragma handling, and per-file driver.
//!
//! Every rule works on the token stream of [`crate::lexer`], so string
//! literals, char literals, and comments can never trigger a finding.
//! Code under `#[cfg(test)]` (and whole integration-test files) is
//! exempt from the determinism rules — tests may use whatever
//! collections they like — while the hermeticity rule
//! (`no-registry-import`) applies everywhere.
//!
//! A finding can be waived in place with a pragma comment that names the
//! rule and *must* give a justification:
//!
//! ```text
//! some_option.expect("..."); // tao-lint: allow(no-unwrap-in-lib, reason = "checked above")
//! ```
//!
//! A pragma on its own line waives the line below it; a trailing pragma
//! waives its own line. A pragma without a non-empty `reason` string is
//! itself a finding (`bad-pragma`) and waives nothing.

use crate::lexer::{lex, Token, TokenKind};

/// The rules `tao-lint` enforces. See `DESIGN.md` §8 for the rationale
/// behind each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No `std::collections` hash map/set in non-test code: their
    /// iteration order is seeded per process, which silently breaks
    /// cross-process replay determinism. Use `tao_util::det`.
    DetCollections,
    /// No `SystemTime::now`/`Instant::now` outside the bench harness:
    /// simulated time must come from `tao_sim`, never the wall clock.
    NoWallClock,
    /// No `.unwrap()`/`.expect(` in library code: return errors or
    /// carry a pragma with a justification.
    NoUnwrapInLib,
    /// No `use`/`extern crate` of the banned registry crates — the
    /// source-level complement of `scripts/ci.sh`'s manifest grep.
    NoRegistryImport,
    /// A malformed waiver pragma (unknown rule or missing reason).
    BadPragma,
}

/// Every enforced rule, in reporting order.
pub const ALL_RULES: [Rule; 5] = [
    Rule::DetCollections,
    Rule::NoWallClock,
    Rule::NoUnwrapInLib,
    Rule::NoRegistryImport,
    Rule::BadPragma,
];

/// Registry crates that must never be imported; keep in sync with the
/// `banned` list in `scripts/ci.sh`.
pub const BANNED_CRATES: [&str; 7] = [
    "rand",
    "proptest",
    "criterion",
    "crossbeam",
    "parking_lot",
    "bytes",
    "serde",
];

impl Rule {
    /// The rule's name as used in pragmas and reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::DetCollections => "det-collections",
            Rule::NoWallClock => "no-wall-clock",
            Rule::NoUnwrapInLib => "no-unwrap-in-lib",
            Rule::NoRegistryImport => "no-registry-import",
            Rule::BadPragma => "bad-pragma",
        }
    }

    /// Parses a rule name from a pragma.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.into_iter().find(|r| r.name() == name)
    }
}

/// How a file participates in linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library code under `crates/*/src` (not `bin/`, not `main.rs`):
    /// all rules apply.
    Lib,
    /// A binary (`src/bin/`, `src/main.rs`) or example: everything but
    /// `no-unwrap-in-lib` applies.
    Bin,
    /// An integration test or bench harness: only compiled into test
    /// runners, so the determinism rules are off; `no-registry-import`
    /// still applies.
    TestHarness,
}

/// One lint finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Path of the file, as given to [`lint_source`].
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Finding {
    /// `path:line:col: rule: message`, the report and golden-file format.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}: {}",
            self.path,
            self.line,
            self.col,
            self.rule.name(),
            self.message
        )
    }
}

/// The outcome of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Violations that were not waived.
    pub findings: Vec<Finding>,
    /// `(rule, line)` of findings waived by a valid pragma.
    pub waived: Vec<(Rule, u32)>,
}

/// A parsed waiver pragma.
#[derive(Debug)]
struct Pragma {
    rule: Rule,
    /// The line whose findings this pragma waives.
    effective_line: u32,
}

/// Lints one file's source text. `path` is used only for reporting.
pub fn lint_source(path: &str, source: &str, kind: FileKind) -> FileReport {
    let tokens = lex(source);
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let test_ranges = test_line_ranges(&code);
    let in_test = |line: u32| -> bool {
        kind == FileKind::TestHarness
            || test_ranges.iter().any(|&(lo, hi)| lo <= line && line <= hi)
    };

    let mut report = FileReport::default();
    let (pragmas, mut bad) = collect_pragmas(path, &tokens, &code);
    let mut raw: Vec<Finding> = Vec::new();

    for (i, t) in code.iter().enumerate() {
        // det-collections
        if t.kind == TokenKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !in_test(t.line)
        {
            raw.push(Finding {
                rule: Rule::DetCollections,
                path: path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "std `{}` iterates in per-process random order; \
                     use `tao_util::det::{}` instead",
                    t.text,
                    if t.text == "HashMap" { "DetMap" } else { "DetSet" }
                ),
            });
        }

        // no-wall-clock: `SystemTime::now` / `Instant::now`
        if t.kind == TokenKind::Ident
            && (t.text == "SystemTime" || t.text == "Instant")
            && !in_test(t.line)
            && matches!(code.get(i + 1), Some(p) if p.text == "::")
            && matches!(code.get(i + 2), Some(n) if n.text == "now")
        {
            raw.push(Finding {
                rule: Rule::NoWallClock,
                path: path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}::now` reads the wall clock; simulated code must \
                     take time from `tao_sim::SimTime`",
                    t.text
                ),
            });
        }

        // no-unwrap-in-lib: `.unwrap(` / `.expect(`
        if kind == FileKind::Lib
            && t.kind == TokenKind::Punct
            && t.text == "."
            && !in_test(t.line)
        {
            if let (Some(name), Some(paren)) = (code.get(i + 1), code.get(i + 2)) {
                if name.kind == TokenKind::Ident
                    && (name.text == "unwrap" || name.text == "expect")
                    && paren.text == "("
                {
                    raw.push(Finding {
                        rule: Rule::NoUnwrapInLib,
                        path: path.to_string(),
                        line: name.line,
                        col: name.col,
                        message: format!(
                            "`.{}(` in library code can panic; return an error \
                             or add `// tao-lint: allow(no-unwrap-in-lib, \
                             reason = \"...\")`",
                            name.text
                        ),
                    });
                }
            }
        }

        // no-registry-import: `use <banned>…` / `extern crate <banned>`
        if t.kind == TokenKind::Ident && t.text == "use" {
            if let Some(first) = code.get(i + 1) {
                if first.kind == TokenKind::Ident
                    && BANNED_CRATES.contains(&first.text.as_str())
                {
                    raw.push(registry_finding(path, first));
                }
            }
        }
        if t.kind == TokenKind::Ident && t.text == "extern" {
            if let (Some(kw), Some(name)) = (code.get(i + 1), code.get(i + 2)) {
                if kw.text == "crate" && BANNED_CRATES.contains(&name.text.as_str()) {
                    raw.push(registry_finding(path, name));
                }
            }
        }
    }

    // Apply waivers.
    for f in raw {
        let waiver = pragmas
            .iter()
            .find(|p| p.rule == f.rule && p.effective_line == f.line);
        match waiver {
            Some(p) => report.waived.push((p.rule, f.line)),
            None => report.findings.push(f),
        }
    }
    report.findings.append(&mut bad);
    report
        .findings
        .sort_by(|a, b| (a.line, a.col).cmp(&(b.line, b.col)));
    report
}

fn registry_finding(path: &str, name: &Token) -> Finding {
    Finding {
        rule: Rule::NoRegistryImport,
        path: path.to_string(),
        line: name.line,
        col: name.col,
        message: format!(
            "import of banned registry crate `{}`; the hermetic build \
             policy allows only in-tree tao-* crates (see DESIGN.md)",
            name.text
        ),
    }
}

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items.
///
/// An attribute whose tokens are `cfg ( … test … )` (with no `not`) or
/// exactly `test` marks the item that follows. The item's extent runs to
/// the `;` of a braceless item or through the brace-matched `{ … }` body.
fn test_line_ranges(code: &[&Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].text == "#" && code.get(i + 1).map_or(false, |t| t.text == "[") {
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1;
            let mut idents: Vec<&str> = Vec::new();
            while j < code.len() && depth > 0 {
                match code[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    _ => {
                        if code[j].kind == TokenKind::Ident {
                            idents.push(&code[j].text);
                        }
                    }
                }
                j += 1;
            }
            let is_cfg_test = idents.contains(&"cfg")
                && idents.contains(&"test")
                && !idents.contains(&"not");
            let is_test_attr = idents == ["test"];
            if is_cfg_test || is_test_attr {
                let start_line = code[i].line;
                // Find the guarded item's extent: the first `;` before
                // any brace ends it, otherwise brace-match its body.
                let mut k = j;
                let mut end_line = start_line;
                while k < code.len() {
                    let text = code[k].text.as_str();
                    if text == ";" {
                        end_line = code[k].line;
                        break;
                    }
                    if text == "{" {
                        let mut braces = 1;
                        k += 1;
                        while k < code.len() && braces > 0 {
                            match code[k].text.as_str() {
                                "{" => braces += 1,
                                "}" => braces -= 1,
                                _ => {}
                            }
                            k += 1;
                        }
                        end_line = code.get(k.saturating_sub(1)).map_or(end_line, |t| t.line);
                        break;
                    }
                    k += 1;
                }
                ranges.push((start_line, end_line));
                i = j;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
    ranges
}

/// Extracts waiver pragmas from comment tokens. Returns the valid
/// pragmas plus `bad-pragma` findings for malformed ones.
fn collect_pragmas(
    path: &str,
    tokens: &[Token],
    code: &[&Token],
) -> (Vec<Pragma>, Vec<Finding>) {
    let mut pragmas = Vec::new();
    let mut bad = Vec::new();
    for t in tokens {
        if t.kind != TokenKind::Comment {
            continue;
        }
        let Some(at) = t.text.find("tao-lint:") else {
            continue;
        };
        let rest = t.text[at + "tao-lint:".len()..].trim_start();
        match parse_pragma(rest) {
            Ok((rule, _reason)) => {
                // A trailing pragma covers its own line; a pragma alone
                // on a line covers the next.
                let has_code_on_line = code.iter().any(|c| c.line == t.line);
                pragmas.push(Pragma {
                    rule,
                    effective_line: if has_code_on_line { t.line } else { t.line + 1 },
                });
            }
            Err(why) => bad.push(Finding {
                rule: Rule::BadPragma,
                path: path.to_string(),
                line: t.line,
                col: t.col,
                message: why,
            }),
        }
    }
    (pragmas, bad)
}

/// Parses `allow(<rule>, reason = "<non-empty>")`.
fn parse_pragma(text: &str) -> Result<(Rule, String), String> {
    let body = text
        .strip_prefix("allow(")
        .ok_or_else(|| "pragma must be `allow(<rule>, reason = \"...\")`".to_string())?;
    let Some(close) = body.rfind(')') else {
        return Err("pragma is missing its closing `)`".to_string());
    };
    let body = &body[..close];
    let Some((rule_name, rest)) = body.split_once(',') else {
        return Err(format!(
            "pragma for `{}` needs a `, reason = \"...\"` justification",
            body.trim()
        ));
    };
    let rule_name = rule_name.trim();
    let rule = Rule::from_name(rule_name)
        .ok_or_else(|| format!("pragma names unknown rule `{rule_name}`"))?;
    let rest = rest.trim();
    let reason = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .ok_or_else(|| {
            format!("pragma for `{rule_name}` needs `reason = \"...\"` after the rule")
        })?;
    let reason = reason
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("pragma reason for `{rule_name}` must be a quoted string"))?;
    if reason.trim().is_empty() {
        return Err(format!(
            "pragma for `{rule_name}` has an empty reason; justify the waiver"
        ));
    }
    Ok((rule, reason.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str, kind: FileKind) -> Vec<String> {
        lint_source("f.rs", src, kind)
            .findings
            .into_iter()
            .map(|f| format!("{}:{}", f.rule.name(), f.line))
            .collect()
    }

    #[test]
    fn hash_collections_flagged_outside_tests_only() {
        let src = "use std::collections::HashMap;\n\
                   #[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        assert_eq!(findings(src, FileKind::Lib), vec!["det-collections:1"]);
    }

    #[test]
    fn strings_and_comments_never_fire() {
        let src = "// HashMap in a comment\nlet s = \"HashMap\"; /* Instant::now() */\n";
        assert!(findings(src, FileKind::Lib).is_empty());
    }

    #[test]
    fn wall_clock_detected_through_paths() {
        let src = "let t = std::time::Instant::now();\nlet s = SystemTime::now();\n";
        assert_eq!(
            findings(src, FileKind::Lib),
            vec!["no-wall-clock:1", "no-wall-clock:2"]
        );
    }

    #[test]
    fn unwrap_rule_is_lib_only_and_waivable() {
        let src = "fn f() { x.unwrap(); }\n";
        assert_eq!(findings(src, FileKind::Lib), vec!["no-unwrap-in-lib:1"]);
        assert!(findings(src, FileKind::Bin).is_empty());
        let waived = "fn f() { x.unwrap(); } // tao-lint: allow(no-unwrap-in-lib, reason = \"ok\")\n";
        assert!(findings(waived, FileKind::Lib).is_empty());
        let report = lint_source("f.rs", waived, FileKind::Lib);
        assert_eq!(report.waived, vec![(Rule::NoUnwrapInLib, 1)]);
    }

    #[test]
    fn pragma_alone_on_a_line_covers_the_next() {
        let src = "// tao-lint: allow(no-unwrap-in-lib, reason = \"init\")\nlet x = y.expect(\"set\");\n";
        assert!(findings(src, FileKind::Lib).is_empty());
    }

    #[test]
    fn pragma_without_reason_is_a_finding_and_waives_nothing() {
        let src = "x.unwrap(); // tao-lint: allow(no-unwrap-in-lib)\n";
        let got = findings(src, FileKind::Lib);
        assert!(got.contains(&"no-unwrap-in-lib:1".to_string()));
        assert!(got.contains(&"bad-pragma:1".to_string()));
    }

    #[test]
    fn registry_imports_flagged_even_in_test_harnesses() {
        let src = "use serde::Serialize;\nextern crate rand;\nuse tao_util::rand::Rng;\n";
        assert_eq!(
            findings(src, FileKind::TestHarness),
            vec!["no-registry-import:1", "no-registry-import:2"]
        );
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod real {\n    use std::collections::HashMap;\n}\n";
        assert_eq!(findings(src, FileKind::Lib), vec!["det-collections:3"]);
    }

    #[test]
    fn test_attr_covers_a_single_fn() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn lib() { y.unwrap(); }\n";
        assert_eq!(findings(src, FileKind::Lib), vec!["no-unwrap-in-lib:3"]);
    }
}
